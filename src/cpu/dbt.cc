// Dynamic binary translation engine.
//
// Four cooperating fast-path mechanisms sit on top of the basic cached-block
// translator (see DESIGN.md §4):
//
//  * Block chaining — each block carries direct successor links patched on
//    first execution, so steady-state control flow jumps block→block without
//    a hash lookup. Links are validated against `chain_gen_`, a monotonically
//    bumped generation: any block erasure, SFENCE, ptbr switch or interrupt
//    delivery bumps it, which cuts every chain at once. Correctness never
//    depends on eager unlinking — a stale link is simply never followed, and
//    block storage is node-stable except for erasure, which always bumps.
//  * Hot-trace superblocks — a per-block execution counter promotes hot loop
//    heads (threshold-crossing backward-transfer targets, NET style) into
//    straight-line traces splicing up to kMaxTraceBlocks chained blocks. A
//    per-instruction pc guard makes any divergence (trap, off-trace branch)
//    fall back to the constituent blocks; pending SMC invalidations are
//    honored at block seams, exactly where block-by-block dispatch would
//    apply them.
//  * Lazy mapping epochs — SFENCE / paging toggles bump `map_gen_` instead of
//    flushing: a block from a stale epoch is revalidated by re-translating
//    its first and last instruction addresses and comparing code pages, so
//    an sfence that didn't move the hot loop costs two translations, not a
//    whole-cache retranslation storm. FlushCodeCache() (image load, snapshot
//    restore — the code *bytes* changed) remains an eager full flush.
//  * Surgical eviction — at capacity a clock sweep over a victim ring evicts
//    cold or stale-epoch blocks one at a time; hot blocks survive on their
//    reference bit. The full flush only remains as a pathological fallback.
//
// As before, the guest's architectural contract for self-modified code is
// SFENCE-like: stores into code pages invalidate translations at the next
// block (or trace-seam) boundary; a store into the *currently executing*
// block may run a few stale instructions (documented in DESIGN.md).

#include "src/cpu/dbt.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/cpu/exec_core.h"
#include "src/cpu/interpreter.h"
#include "src/cpu/ir/tier2.h"
#include "src/cpu/ir/tier2_exec.h"
#include "src/util/byte_stream.h"
#include "src/util/crc32.h"

namespace hyperion::cpu {

namespace {

using isa::Opcode;

// An instruction that may change control flow, privileged state, or the
// validity of cached translations ends its block. Scratch-CSR accesses are
// the exception among CSR ops: they cannot toggle paging, move ptbr, or
// change status/timecmp, so the code that follows them in the same block is
// fetched under the same translation regime — they may sit mid-block (a
// user-mode access still traps precisely there, like a faulting load).
bool EndsBlock(const isa::Instruction& in) {
  switch (in.opcode) {
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kBranch:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kSret:
    case Opcode::kWfi:
    case Opcode::kHcall:
    case Opcode::kSfence:
    case Opcode::kHalt:
    case Opcode::kIllegal:
      return true;
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
      return in.imm != static_cast<int32_t>(isa::Csr::kScratch);
    default:
      return false;
  }
}

class DbtEngine final : public ExecutionEngine {
 public:
  explicit DbtEngine(const DbtOptions& options)
      : options_(options), max_blocks_(options.max_blocks) {}

  std::string_view name() const override { return "dbt"; }

  RunResult Run(VcpuContext& ctx, uint64_t max_cycles) override {
    ExecCore core(ctx, this);
    CpuState& s = ctx.state;

    if (s.halted) {
      core.Exit(ExitReason::kHalt);
      return core.Finish();
    }
    if (s.waiting) {
      core.CheckTimer();
      if (s.ipend == 0) {
        core.Charge(1);
        core.Exit(ExitReason::kWfi);
        return core.Finish();
      }
      s.waiting = false;
    }

    Block* prev = nullptr;  // last executed block, for chain patching
    uint64_t prev_gen = 0;  // chain_gen_ at the time `prev` was recorded

    while (!core.exited() && core.cycles() < max_cycles) {
      if (have_pending_) {
        ApplyPendingInvalidations(ctx);
      }
      core.CheckTimer();
      if (core.DeliverInterruptIfPending()) {
        // Asynchronous control transfer: cut every chain. Dispatch after the
        // handler repatches links under the new generation.
        ++chain_gen_;
        if (core.exited()) {
          break;
        }
      }
      if (prev != nullptr && prev_gen != chain_gen_) {
        prev = nullptr;  // may dangle after an erasure; never dereference
      }

      // Dispatch: follow a direct chain link when one is valid, otherwise
      // fall back to the keyed lookup (revalidating stale-epoch blocks).
      Block* block = nullptr;
      if (prev != nullptr) {
        block = FollowLink(*prev, s.pc);
      }
      if (block != nullptr) {
        ++ctx.stats.chain_hits;
      } else {
        uint64_t key = Key(s.pc, s.ptbr, s.paging_enabled());
        block = FindValid(key, core, ctx);
        if (block == nullptr) {
          block = TranslateAndInsert(core, ctx, key);
        }
        if (block == nullptr) {
          // First instruction is unfetchable (fault) or an MMIO/absent page:
          // let the faithful single-step path produce the trap or exit.
          AbortRecording();
          SingleStep(core, ctx);
          prev = nullptr;
          continue;
        }
        if (prev != nullptr && prev_gen == chain_gen_) {
          PatchLink(*prev, block->start_va, block);
        }
      }

      // Hot-trace state machine (NET: record the next executing tail once a
      // backward-transfer target crosses the heat threshold).
      if (recording_) {
        if (recording_gen_ != chain_gen_) {
          AbortRecording();  // an invalidation voided the recorded pointers
        } else if (block == trace_head_) {
          FormTrace(core, ctx);  // loop closed
        } else if (block->trace != nullptr || !Traceable(*block) ||
                   trace_blocks_.size() >= kMaxTraceBlocks) {
          AbortRecording();
        } else {
          trace_blocks_.push_back(block);
        }
      }
      if (!recording_ && block->trace == nullptr && prev != nullptr &&
          block->start_va <= prev->start_va && ++block->heat >= kHotThreshold &&
          Traceable(*block)) {
        recording_ = true;
        recording_gen_ = chain_gen_;
        trace_head_ = block;
        trace_blocks_.clear();
        trace_blocks_.push_back(block);
      }

      // Execute: the tier-2 unit when promoted, else the superblock when
      // present and current-epoch, else the block itself.
      if (block->trace != nullptr) {
        Trace& tr = *block->trace;
        if (tr.map_gen != map_gen_) {
          // Lazy epoch invalidation. A tier-2 unit carries its guard set
          // (one probe per code page), so an sfence that didn't move the
          // hot loop revalidates in a few translations instead of
          // retranslating and re-optimizing from scratch.
          if (tr.tier2 != nullptr && RevalidateUnit(core, ctx, *tr.tier2)) {
            tr.map_gen = map_gen_;
            tr.tier2->map_gen = map_gen_;
          } else {
            KillTrace(*block);
          }
        } else if (options_.enable_tier2 && tr.tier2 == nullptr &&
                   !tr.tier2_failed && tr.execs >= options_.tier2_threshold) {
          PromoteToTier2(core, ctx, *block);
        }
      }
      if (block->trace != nullptr) {
        if (block->trace->tier2 != nullptr) {
          RunTier2(core, ctx, *block, max_cycles);
        } else {
          RunTrace(core, ctx, *block, max_cycles);
        }
        prev = nullptr;  // the exit block is not known
        continue;
      }
      ++ctx.stats.block_executions;
      block->hot = true;
      uint32_t expect_pc = block->start_va;
      for (const isa::Instruction& in : block->instrs) {
        if (s.pc != expect_pc) {
          break;  // a trap inside the block redirected control
        }
        if (!core.Execute(in)) {
          break;  // exit latched
        }
        expect_pc += 4;
      }
      // The pointer stays valid: nothing executed above erases blocks (SMC
      // and flushes only queue pending work), and any later erasure bumps
      // chain_gen_, which invalidates `prev` before the next dereference.
      prev = block;
      prev_gen = chain_gen_;
    }
    return core.Finish();
  }

  void InvalidateCodePage(uint32_t gpn) override {
    if (code_pages_.count(gpn)) {
      pending_page_invalidations_.push_back(gpn);
      have_pending_ = true;
    }
  }

  void FlushCodeCache() override {
    // Content change (image load, snapshot restore): cached bytes are stale.
    pending_flush_ = true;
    have_pending_ = true;
  }

  void InvalidateMappings() override {
    // SFENCE / paging toggle: bytes unchanged, va→pa mapping suspect. Blocks
    // revalidate lazily against the new epoch; traces are dropped on their
    // next dispatch; chains are cut.
    ++map_gen_;
    ++chain_gen_;
  }

  void OnAddressSpaceSwitch() override {
    // Blocks are keyed by (va, ptbr, paging) and stay valid per root; only
    // cross-block chains assume a stable address space.
    ++chain_gen_;
  }

  // Emits every cached block (and any tier-2 unit) as a self-describing
  // versioned blob: per block the key, a CRC of the translated code words
  // (the image-digest binding), the pre-decoded instructions, the guest
  // code pages, heat, and an optional tier-2 section. Tier-1 traces are not
  // persisted — with heat restored they re-form in one recorded loop pass
  // at zero translation cost. Blocks are sorted by key so identical caches
  // serialize to identical bytes.
  std::vector<uint8_t> SerializeTranslations() const override {
    ByteWriter w;
    w.WriteU32(kPersistMagic);
    w.WriteU32(kPersistVersion);
    std::vector<const Block*> ordered;
    ordered.reserve(blocks_.size());
    for (const auto& [key, b] : blocks_) {
      ordered.push_back(&b);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Block* a, const Block* b) { return a->key < b->key; });
    w.WriteU32(static_cast<uint32_t>(ordered.size()));
    for (const Block* bp : ordered) {
      const Block& b = *bp;
      w.WriteU64(b.key);
      w.WriteU32(b.start_va);
      w.WriteU32(b.code_crc);
      w.WriteU32(b.heat);
      w.WriteU16(static_cast<uint16_t>(b.instrs.size()));
      for (const isa::Instruction& in : b.instrs) {
        w.WriteU8(static_cast<uint8_t>(in.opcode));
        w.WriteU8(in.rd);
        w.WriteU8(in.rs1);
        w.WriteU8(in.rs2);
        w.WriteU8(in.funct);
        w.WriteU32(static_cast<uint32_t>(in.imm));
      }
      w.WriteU8(static_cast<uint8_t>(b.gpns.size()));
      for (uint32_t g : b.gpns) {
        w.WriteU32(g);
      }
      bool t2 = b.trace != nullptr && b.trace->tier2 != nullptr;
      w.WriteU8(t2 ? 1 : 0);
      if (t2) {
        const Trace& tr = *b.trace;
        w.WriteU8(static_cast<uint8_t>(tr.gpns.size()));
        for (uint32_t g : tr.gpns) {
          w.WriteU32(g);
        }
        w.WriteU64(tr.execs);
        ir::SerializeUnit(*tr.tier2, w);
      }
    }
    uint32_t crc = Crc32(w.buffer().data(), w.size());
    w.WriteU32(crc);
    return w.TakeBuffer();
  }

  // Replaces the caches with units from a persisted blob, revalidating each
  // against the *restored* guest memory and mappings: a block installs only
  // if its va still translates to the recorded pages and the code words
  // still hash to the recorded CRC; a tier-2 unit additionally reruns its
  // guard probes. Anything that fails — trailer CRC, version, a torn or
  // tampered block — is counted in persist_misses and degrades to cold
  // translation. Revalidation is host-side provisioning work and charges
  // no guest cycles, so a restored VM's timeline is identical to one that
  // never snapshotted.
  void InstallTranslations(VcpuContext& ctx, std::span<const uint8_t> blob) override {
    // The restore path replaced guest memory wholesale: start from empty
    // caches and drop queued invalidation work — it described the old
    // contents, and an empty cache has nothing left to invalidate.
    ResetCaches();
    pending_page_invalidations_.clear();
    pending_flush_ = false;
    have_pending_ = false;
    if (blob.empty()) {
      return;  // v1 snapshot or non-DBT source: plain cold start
    }
    uint32_t trailer = 0;
    if (blob.size() < 16) {
      ++ctx.stats.persist_misses;
      return;
    }
    std::memcpy(&trailer, blob.data() + blob.size() - 4, 4);
    if (Crc32(blob.data(), blob.size() - 4) != trailer) {
      ++ctx.stats.persist_misses;
      return;
    }
    ByteReader r(blob.first(blob.size() - 4));
    auto magic = r.ReadU32();
    auto version = r.ReadU32();
    auto count = r.ReadU32();
    if (!count.ok() || *magic != kPersistMagic || *version != kPersistVersion) {
      ++ctx.stats.persist_misses;
      return;
    }
    for (uint32_t n = 0; n < *count; ++n) {
      if (!InstallOneBlock(ctx, r)) {
        // Parse desync: nothing after this point can be trusted.
        ++ctx.stats.persist_misses;
        return;
      }
    }
  }

 private:
  struct Block;

  struct Link {
    uint32_t target_va = 0;
    Block* target = nullptr;
    uint64_t gen = 0;  // valid only while gen == chain_gen_
  };

  // A run of trace instructions needing a single pc guard: a chunk starts
  // wherever pc is not statically known — at a block entry or right after an
  // instruction that may trap or redirect. Inside a chunk only straight-line
  // ALU instructions precede each step, so pc provably advances by 4 and the
  // per-instruction guard is elided. `seam` marks former block entry points,
  // where pending SMC invalidations force an exit (equivalent to
  // block-by-block dispatch).
  struct Chunk {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t va = 0;  // guard: pc the first instruction must execute at
    uint8_t seam = 0;
  };

  // A superblock: the concatenated instructions of a hot loop's blocks.
  // Once `execs` crosses the tier-up threshold the trace is lifted into an
  // optimized tier-2 unit (src/cpu/ir/); the unit shares the trace's page
  // registrations, so SMC/sfence invalidation kills both at once. A trace
  // restored from a persisted translation blob may be a stub (empty instrs)
  // that exists only to host its tier-2 unit.
  struct Trace {
    uint32_t head_va = 0;
    uint64_t map_gen = 0;
    uint64_t execs = 0;        // full passes, for tier-2 promotion
    bool tier2_failed = false;  // compile refused; don't retry every pass
    std::vector<isa::Instruction> instrs;
    std::vector<Chunk> chunks;
    std::vector<uint32_t> gpns;
    std::unique_ptr<ir::Tier2Unit> tier2;
  };

  // Instructions that can neither trap nor redirect control: pc advances by
  // exactly 4, unconditionally (ALU never faults; div-by-zero has a defined
  // result on HV32).
  static bool StraightLine(const isa::Instruction& in) {
    switch (in.opcode) {
      case Opcode::kOp:
      case Opcode::kOpImm:
      case Opcode::kLui:
      case Opcode::kAuipc:
        return true;
      default:
        return false;
    }
  }

  struct Block {
    uint32_t start_va = 0;
    uint64_t key = 0;
    uint64_t map_gen = 0;  // epoch the translation was (re)validated in
    uint32_t heat = 0;     // backward-transfer arrivals (trace promotion)
    uint32_t code_crc = 0;  // CRC of the translated instruction words
    bool hot = false;       // clock reference bit
    std::vector<isa::Instruction> instrs;
    std::vector<uint32_t> gpns;  // guest pages the code bytes came from
    Link links[2];
    uint8_t link_rr = 0;
    std::unique_ptr<Trace> trace;  // present on promoted loop heads
  };

  static constexpr size_t kMaxBlockInstrs = 64;
  static constexpr uint64_t kTranslateCostPerInsn = 6;
  static constexpr uint32_t kHotThreshold = 16;
  static constexpr size_t kMaxTraceBlocks = 8;
  static constexpr size_t kMaxTraceInstrs = 256;
  // Persisted translation cache: "HCT2" little-endian, bumped on any layout
  // change so stale blobs are rejected wholesale instead of misparsed.
  static constexpr uint32_t kPersistMagic = 0x32544348;
  static constexpr uint32_t kPersistVersion = 1;

  static uint64_t Key(uint32_t va, uint32_t ptbr, bool paging) {
    uint64_t k = va;
    k |= static_cast<uint64_t>(ptbr) << 32;
    // ptbr values are page numbers (< 2^20 in practice); fold paging on top.
    return k ^ (paging ? 0x8000000000000000ull : 0);
  }

  // A block whose terminal cannot touch privileged state or translations may
  // be spliced into a superblock. Scratch-CSR accesses qualify: they cannot
  // move status/timecmp (the values RunTrace and the tier-2 executor hoist)
  // or any translation state, and tier-2 elides the dead ones.
  static bool Traceable(const Block& b) {
    if (b.instrs.empty()) {
      return false;
    }
    const isa::Instruction& last = b.instrs.back();
    switch (last.opcode) {
      case Opcode::kJal:
      case Opcode::kJalr:
      case Opcode::kBranch:
        return true;
      case Opcode::kCsrrw:
      case Opcode::kCsrrs:
      case Opcode::kCsrrc:
        return last.imm == static_cast<int32_t>(isa::Csr::kScratch);
      default:
        return !EndsBlock(last);  // plain fall-through (length-capped block)
    }
  }

  // Decodes instructions starting at `va` without delivering any trap: a
  // fetch problem simply ends the block.
  Block TranslateBlock(ExecCore& core, VcpuContext& ctx, uint32_t va) {
    Block block;
    block.start_va = va;
    CpuState& s = ctx.state;
    while (block.instrs.size() < kMaxBlockInstrs) {
      if (va & 3u) {
        break;
      }
      mmu::TranslateOutcome out =
          ctx.virt->Translate(va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio) {
        break;
      }
      const uint8_t* page = ctx.memory->pool().FrameData(out.frame);
      uint32_t word;
      std::memcpy(&word, page + isa::VaPageOffset(out.gpa), 4);
      isa::Instruction in = isa::Decode(word);
      block.instrs.push_back(in);
      block.code_crc = Crc32(&word, 4, block.code_crc);
      uint32_t gpn = isa::PageNumber(out.gpa);
      if (block.gpns.empty() || block.gpns.back() != gpn) {
        block.gpns.push_back(gpn);
      }
      if (EndsBlock(in)) {
        break;
      }
      va += 4;
    }
    return block;
  }

  void SingleStep(ExecCore& core, VcpuContext& ctx) {
    uint32_t word = 0;
    if (!core.Fetch(ctx.state.pc, &word)) {
      return;  // trap vectored or exit latched
    }
    core.Execute(isa::Decode(word));
  }

  Block* FollowLink(Block& from, uint32_t pc) {
    for (Link& l : from.links) {
      if (l.gen == chain_gen_ && l.target_va == pc) {
        return l.target;
      }
    }
    return nullptr;
  }

  void PatchLink(Block& from, uint32_t target_va, Block* target) {
    for (Link& l : from.links) {
      if (l.gen != chain_gen_ || l.target_va == target_va) {
        l = Link{target_va, target, chain_gen_};
        return;
      }
    }
    from.links[from.link_rr & 1] = Link{target_va, target, chain_gen_};
    ++from.link_rr;
  }

  // Returns the cached block for `key`, revalidating it against the current
  // mapping epoch (two translations) when a SFENCE/paging toggle intervened.
  Block* FindValid(uint64_t key, ExecCore& core, VcpuContext& ctx) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      return nullptr;
    }
    Block& b = it->second;
    if (b.map_gen != map_gen_) {
      if (!Revalidate(core, ctx, b)) {
        EraseBlock(key, ctx);
        return nullptr;
      }
      b.map_gen = map_gen_;
    }
    return &b;
  }

  // Re-translates the block's first and last instruction addresses and checks
  // they still fetch from the same guest pages. Since blocks are contiguous
  // in va and span at most two pages, matching endpoints imply the whole
  // translation is unchanged.
  bool Revalidate(ExecCore& core, VcpuContext& ctx, const Block& b) {
    if (b.instrs.empty() || b.gpns.empty()) {
      return false;
    }
    CpuState& s = ctx.state;
    auto check = [&](uint32_t va, uint32_t want_gpn) {
      mmu::TranslateOutcome out =
          ctx.virt->Translate(va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      return out.event == mmu::MemEvent::kNone && !out.is_mmio &&
             isa::PageNumber(out.gpa) == want_gpn;
    };
    if (!check(b.start_va, b.gpns.front())) {
      return false;
    }
    if (b.gpns.size() > 1) {
      uint32_t last_va = b.start_va + 4 * static_cast<uint32_t>(b.instrs.size() - 1);
      if (!check(last_va, b.gpns.back())) {
        return false;
      }
    }
    return true;
  }

  Block* TranslateAndInsert(ExecCore& core, VcpuContext& ctx, uint64_t key) {
    Block nb = TranslateBlock(core, ctx, ctx.state.pc);
    if (nb.instrs.empty()) {
      return nullptr;
    }
    ++ctx.stats.blocks_translated;
    core.Charge(kTranslateCostPerInsn * nb.instrs.size());
    if (blocks_.size() >= max_blocks_) {
      EvictForCapacity(ctx);
    }
    nb.key = key;
    nb.map_gen = map_gen_;
    auto [it, inserted] = blocks_.emplace(key, std::move(nb));
    Block& b = it->second;
    for (uint32_t gpn : b.gpns) {
      code_pages_.insert(gpn);
      page_blocks_[gpn].push_back(key);
    }
    ring_.push_back(key);
    if (ring_.size() > 4 * max_blocks_ + 64) {
      CompactRing();
    }
    return &b;
  }

  // Splices the recorded blocks into a straight-line superblock owned by the
  // loop head.
  void FormTrace(ExecCore& core, VcpuContext& ctx) {
    auto tr = std::make_unique<Trace>();
    tr->head_va = trace_head_->start_va;
    tr->map_gen = map_gen_;
    for (Block* b : trace_blocks_) {
      if (tr->instrs.size() + b->instrs.size() > kMaxTraceInstrs) {
        AbortRecording();
        return;
      }
      bool open_chunk = false;  // block entry always starts a fresh chunk
      for (size_t i = 0; i < b->instrs.size(); ++i) {
        uint32_t idx = static_cast<uint32_t>(tr->instrs.size());
        if (!open_chunk) {
          Chunk c;
          c.begin = idx;
          c.va = b->start_va + 4 * static_cast<uint32_t>(i);
          c.seam = static_cast<uint8_t>(i == 0 && !tr->chunks.empty() ? 1 : 0);
          tr->chunks.push_back(c);
        }
        tr->instrs.push_back(b->instrs[i]);
        tr->chunks.back().end = idx + 1;
        open_chunk = StraightLine(b->instrs[i]);
      }
      for (uint32_t gpn : b->gpns) {
        if (std::find(tr->gpns.begin(), tr->gpns.end(), gpn) == tr->gpns.end()) {
          tr->gpns.push_back(gpn);
        }
      }
    }
    core.Charge(2 * tr->instrs.size());  // splice cost
    for (uint32_t gpn : tr->gpns) {
      code_pages_.insert(gpn);
      page_traces_[gpn].push_back(trace_head_->key);
    }
    trace_head_->trace = std::move(tr);
    ++ctx.stats.traces_formed;
    AbortRecording();
  }

  // Executes the head's superblock, re-entering it while the loop keeps
  // closing. Every instruction is guarded by its expected pc, so traps and
  // off-trace branches fall back naturally; seams honor pending SMC work and
  // the block-boundary interrupt window, so a trace never widens worst-case
  // interrupt latency beyond one block.
  void RunTrace(ExecCore& core, VcpuContext& ctx, Block& head, uint64_t max_cycles) {
    Trace& tr = *head.trace;
    CpuState& s = ctx.state;
    head.hot = true;
    const isa::Instruction* instrs = tr.instrs.data();
    const Chunk* chunks = tr.chunks.data();
    const size_t nchunks = tr.chunks.size();
    const uint32_t head_va = tr.head_va;
    // The only CSR a traceable block may touch is the scratch register
    // (which cannot move status or timecmp), and a trap mid-trace fails the
    // next guard, so status (IE) and timecmp are fixed for the whole stay in
    // this trace — hoist them so the per-seam timer/interrupt tests are two
    // compares.
    const uint64_t timer_due =
        s.timecmp != 0 ? s.timecmp : std::numeric_limits<uint64_t>::max();
    const bool ie = s.interrupts_enabled();
    // A long-lived loop would otherwise never return to dispatch (where
    // tier-up happens): once the pass count will cross the promotion
    // threshold, yield so the next dispatch compiles the tier-2 unit.
    uint64_t pass_budget = std::numeric_limits<uint64_t>::max();
    if (options_.enable_tier2 && tr.tier2 == nullptr && !tr.tier2_failed &&
        tr.execs < options_.tier2_threshold) {
      pass_budget = options_.tier2_threshold - tr.execs;
    }
    uint64_t passes = 0;
    for (;;) {
      ++passes;
      for (size_t ci = 0; ci < nchunks; ++ci) {
        const Chunk& c = chunks[ci];
        if (c.seam != 0) {
          if (have_pending_) {
            // Apply SMC invalidations exactly at a block seam.
            CountTracePasses(ctx, tr, passes);
            return;
          }
          // Mirror the dispatch loop's per-block interrupt window at every
          // seam too: without this a trace pass would widen worst-case
          // delivery latency from one block (<=64 instructions) to a full
          // pass (<=256). Bailing out lets dispatch deliver and cut chains.
          if (core.Now() >= timer_due) {
            core.CheckTimer();
          }
          if (ie && s.ipend != 0) {
            CountTracePasses(ctx, tr, passes);
            return;
          }
        }
        if (s.pc != c.va) {
          // Guard failed: trap or off-trace branch.
          CountTracePasses(ctx, tr, passes);
          return;
        }
        for (uint32_t i = c.begin; i < c.end; ++i) {
          if (!core.Execute(instrs[i])) {
            CountTracePasses(ctx, tr, passes);
            return;  // exit latched
          }
        }
      }
      if (s.pc != head_va || have_pending_ || core.cycles() >= max_cycles ||
          passes >= pass_budget) {
        break;
      }
      // Mirror the dispatch loop's per-block interrupt window.
      if (core.Now() >= timer_due) {
        core.CheckTimer();
      }
      if (ie && s.ipend != 0) {
        break;
      }
    }
    CountTracePasses(ctx, tr, passes);
  }

  // Trace passes feed both the external stat and the tier-up counter.
  static void CountTracePasses(VcpuContext& ctx, Trace& tr, uint64_t passes) {
    ctx.stats.trace_executions += passes;
    tr.execs += passes;
  }

  // --- Tier-2 ---------------------------------------------------------------

  // Lifts the head's superblock into an optimized tier-2 unit. A refusal
  // (unsupported instruction in the trace) is remembered so the hot loop
  // does not pay a failed compile on every dispatch.
  void PromoteToTier2(ExecCore& core, VcpuContext& ctx, Block& head) {
    Trace& tr = *head.trace;
    ir::Tier2Input input;
    input.head_va = tr.head_va;
    input.instrs = tr.instrs;
    input.pieces.reserve(tr.chunks.size());
    for (const Chunk& c : tr.chunks) {
      input.pieces.push_back({c.begin, c.end, c.va, c.seam});
    }
    std::optional<ir::Tier2Unit> unit = ir::Compile(input);
    if (!unit || !FillPageMap(core, ctx, *unit)) {
      tr.tier2_failed = true;
      return;
    }
    core.Charge(3 * unit->ops.size());  // optimizer cost, paid once
    unit->map_gen = map_gen_;
    ++ctx.stats.tier2_promotions;
    ctx.stats.guards_elided += unit->guards_elided;
    ctx.stats.csr_writes_elided += unit->csr_elided;
    ctx.stats.tier2_ops_folded += unit->folds;
    ctx.stats.tier2_ops_dead += unit->dead;
    tr.tier2 = std::make_unique<ir::Tier2Unit>(std::move(*unit));
  }

  // Records the unit's guard set: one (probe va, expected gpn) pair per
  // guest code page the trace fetches from, resolved under the current
  // mapping (the trace is current-epoch when promotion happens).
  bool FillPageMap(ExecCore& core, VcpuContext& ctx, ir::Tier2Unit& unit) {
    CpuState& s = ctx.state;
    auto seen = [&unit](uint32_t vpn) {
      for (const auto& [probe_va, gpn] : unit.page_map) {
        if (isa::PageNumber(probe_va) == vpn) {
          return true;
        }
      }
      return false;
    };
    for (const ir::Tier2Op& o : unit.ops) {
      if (o.op == ir::T2Op::kSeam) {
        continue;  // seams reuse their block entry's va
      }
      uint32_t vpn = isa::PageNumber(o.va);
      if (seen(vpn)) {
        continue;
      }
      mmu::TranslateOutcome out = ctx.virt->Translate(
          o.va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio) {
        return false;
      }
      unit.page_map.emplace_back(o.va, isa::PageNumber(out.gpa));
    }
    return !unit.page_map.empty();
  }

  // Reruns the unit's guard probes against the current mapping epoch.
  bool RevalidateUnit(ExecCore& core, VcpuContext& ctx, const ir::Tier2Unit& unit) {
    CpuState& s = ctx.state;
    for (const auto& [probe_va, want_gpn] : unit.page_map) {
      mmu::TranslateOutcome out = ctx.virt->Translate(
          probe_va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio ||
          isa::PageNumber(out.gpa) != want_gpn) {
        return false;
      }
    }
    return true;
  }

  // --- Persistence ----------------------------------------------------------

  // Parses one block record from a persisted blob and installs it if it
  // revalidates against the restored guest. Returns false only on a parse
  // desync (torn/truncated stream); a semantically stale block is skipped
  // with a persist_miss and parsing continues.
  bool InstallOneBlock(VcpuContext& ctx, ByteReader& r) {
    auto key = r.ReadU64();
    auto start_va = r.ReadU32();
    auto code_crc = r.ReadU32();
    auto heat = r.ReadU32();
    auto ninstr = r.ReadU16();
    if (!ninstr.ok() || *ninstr == 0 || *ninstr > kMaxBlockInstrs) {
      return false;
    }
    Block b;
    b.key = *key;
    b.start_va = *start_va;
    b.code_crc = *code_crc;
    b.heat = *heat;
    b.instrs.resize(*ninstr);
    for (isa::Instruction& in : b.instrs) {
      auto op = r.ReadU8();
      auto rd = r.ReadU8();
      auto rs1 = r.ReadU8();
      auto rs2 = r.ReadU8();
      auto funct = r.ReadU8();
      auto imm = r.ReadU32();
      if (!imm.ok() || *rd >= 16 || *rs1 >= 16 || *rs2 >= 16) {
        return false;
      }
      in.opcode = static_cast<isa::Opcode>(*op);
      in.rd = *rd;
      in.rs1 = *rs1;
      in.rs2 = *rs2;
      in.funct = *funct;
      in.imm = static_cast<int32_t>(*imm);
    }
    auto ngpns = r.ReadU8();
    if (!ngpns.ok() || *ngpns == 0 || *ngpns > 2) {
      return false;
    }
    b.gpns.resize(*ngpns);
    for (uint32_t& g : b.gpns) {
      auto v = r.ReadU32();
      if (!v.ok()) {
        return false;
      }
      g = *v;
    }
    auto has_t2 = r.ReadU8();
    if (!has_t2.ok()) {
      return false;
    }
    std::unique_ptr<Trace> stub;
    if (*has_t2 != 0) {
      // The tier-2 section must parse even if the block is later rejected —
      // the stream has to stay in sync for the blocks behind it.
      auto ntg = r.ReadU8();
      if (!ntg.ok() || *ntg == 0 || *ntg > 64) {
        return false;
      }
      stub = std::make_unique<Trace>();
      stub->head_va = b.start_va;
      stub->gpns.resize(*ntg);
      for (uint32_t& g : stub->gpns) {
        auto v = r.ReadU32();
        if (!v.ok()) {
          return false;
        }
        g = *v;
      }
      auto execs = r.ReadU64();
      if (!execs.ok()) {
        return false;
      }
      stub->execs = *execs;
      std::optional<ir::Tier2Unit> unit = ir::DeserializeUnit(r);
      if (!unit) {
        return false;
      }
      stub->tier2 = std::make_unique<ir::Tier2Unit>(std::move(*unit));
    }
    // Semantic acceptance: the va must still map to the recorded pages and
    // the restored code words must hash to the recorded CRC.
    if (blocks_.size() >= max_blocks_ || blocks_.count(b.key) != 0 ||
        !RevalidateRestoredBlock(ctx, b)) {
      ++ctx.stats.persist_misses;
      return true;
    }
    if (stub != nullptr) {
      bool paging = (b.key >> 63) != 0;
      uint32_t ptbr = static_cast<uint32_t>((b.key >> 32) & 0x7FFFFFFFu);
      if (options_.enable_tier2 &&
          RevalidateUnitUncharged(ctx, *stub->tier2, paging, ptbr)) {
        stub->map_gen = map_gen_;
        stub->tier2->map_gen = map_gen_;
        for (uint32_t gpn : stub->gpns) {
          code_pages_.insert(gpn);
          page_traces_[gpn].push_back(b.key);
        }
        b.trace = std::move(stub);
      } else {
        // Unit dropped (guard drift or tier-2 disabled here); the tier-1
        // block underneath is still good.
        ++ctx.stats.persist_misses;
      }
    }
    b.map_gen = map_gen_;
    uint64_t key2 = b.key;
    auto [it, inserted] = blocks_.emplace(key2, std::move(b));
    for (uint32_t gpn : it->second.gpns) {
      code_pages_.insert(gpn);
      page_blocks_[gpn].push_back(key2);
    }
    ring_.push_back(key2);
    ++ctx.stats.persist_hits;
    return true;
  }

  // Like Revalidate(), but for a block parsed from a blob rather than one the
  // current guest produced: decodes (ptbr, paging) from the key instead of
  // trusting live CSRs, additionally re-hashes the code words out of restored
  // memory, and charges nothing — provisioning is host work, so a restored
  // VM's cycle timeline matches a never-snapshotted one.
  bool RevalidateRestoredBlock(VcpuContext& ctx, const Block& b) {
    if ((b.start_va & 3u) != 0 ||
        static_cast<uint32_t>(b.key & 0xFFFFFFFFu) != b.start_va) {
      return false;
    }
    bool paging = (b.key >> 63) != 0;
    uint32_t ptbr = static_cast<uint32_t>((b.key >> 32) & 0x7FFFFFFFu);
    auto xlate = [&](uint32_t va, mmu::TranslateOutcome* out) {
      *out = ctx.virt->Translate(va, mmu::Access::kFetch, ctx.state.priv(),
                                 paging, ptbr);
      return out->event == mmu::MemEvent::kNone && !out->is_mmio;
    };
    mmu::TranslateOutcome first;
    if (!xlate(b.start_va, &first) ||
        isa::PageNumber(first.gpa) != b.gpns.front()) {
      return false;
    }
    uint32_t last_va =
        b.start_va + 4 * static_cast<uint32_t>(b.instrs.size() - 1);
    mmu::TranslateOutcome last = first;
    if (isa::PageNumber(last_va) != isa::PageNumber(b.start_va)) {
      if (b.gpns.size() != 2 || !xlate(last_va, &last) ||
          isa::PageNumber(last.gpa) != b.gpns.back()) {
        return false;
      }
    } else if (b.gpns.size() != 1) {
      return false;
    }
    const uint8_t* page0 = ctx.memory->pool().FrameData(first.frame);
    const uint8_t* page1 = ctx.memory->pool().FrameData(last.frame);
    uint32_t first_vpn = isa::PageNumber(b.start_va);
    uint32_t crc = 0;
    for (size_t i = 0; i < b.instrs.size(); ++i) {
      uint32_t va = b.start_va + 4 * static_cast<uint32_t>(i);
      const uint8_t* page = isa::PageNumber(va) == first_vpn ? page0 : page1;
      uint32_t word;
      std::memcpy(&word, page + isa::VaPageOffset(va), 4);
      crc = Crc32(&word, 4, crc);
    }
    return crc == b.code_crc;
  }

  // RevalidateUnit without the cycle charge, under an explicit address-space
  // root (from the block key) instead of the live CSRs.
  bool RevalidateUnitUncharged(VcpuContext& ctx, const ir::Tier2Unit& unit,
                               bool paging, uint32_t ptbr) {
    for (const auto& [probe_va, want_gpn] : unit.page_map) {
      mmu::TranslateOutcome out = ctx.virt->Translate(
          probe_va, mmu::Access::kFetch, ctx.state.priv(), paging, ptbr);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio ||
          isa::PageNumber(out.gpa) != want_gpn) {
        return false;
      }
    }
    return true;
  }

  void RunTier2(ExecCore& core, VcpuContext& ctx, Block& head, uint64_t max_cycles) {
    head.hot = true;
    Trace& tr = *head.trace;
    ir::Tier2Outcome out =
        ir::RunTier2Unit(core, ctx, *tr.tier2, have_pending_, max_cycles);
    // Tier-2 passes count as trace executions too: the unit *is* the trace,
    // executed better, and external consumers key off trace_executions.
    ctx.stats.trace_executions += out.passes;
    ctx.stats.tier2_executions += out.passes;
    tr.execs += out.passes;
    if (out.deopt) {
      ++ctx.stats.deopts;
    }
  }

  void AbortRecording() {
    recording_ = false;
    trace_head_ = nullptr;
    trace_blocks_.clear();
  }

  // Drops a head's superblock and its page registrations.
  void KillTrace(Block& b) {
    if (b.trace == nullptr) {
      return;
    }
    for (uint32_t gpn : b.trace->gpns) {
      auto it = page_traces_.find(gpn);
      if (it != page_traces_.end()) {
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), b.key), v.end());
        if (v.empty()) {
          page_traces_.erase(it);
        }
      }
      MaybeReleasePage(gpn);
    }
    b.trace.reset();
    b.heat = 0;
  }

  // Removes one block, pruning its key from *every* page it was registered
  // under (a block spanning two pages is registered in both lists; leaving
  // the other list's copy behind would grow it without bound under repeated
  // SMC — the stale-key leak this replaces).
  void EraseBlock(uint64_t key, VcpuContext& ctx) {
    (void)ctx;
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      return;
    }
    Block& b = it->second;
    KillTrace(b);
    for (uint32_t gpn : b.gpns) {
      auto pit = page_blocks_.find(gpn);
      if (pit != page_blocks_.end()) {
        auto& v = pit->second;
        v.erase(std::remove(v.begin(), v.end(), key), v.end());
        if (v.empty()) {
          page_blocks_.erase(pit);
        }
      }
      MaybeReleasePage(gpn);
    }
    blocks_.erase(it);
    // Any chain link or recording pointer to this block is now stale.
    ++chain_gen_;
  }

  void MaybeReleasePage(uint32_t gpn) {
    if (page_blocks_.count(gpn) == 0 && page_traces_.count(gpn) == 0) {
      code_pages_.erase(gpn);
    }
  }

  void ApplyPendingInvalidations(VcpuContext& ctx) {
    if (pending_flush_) {
      EvictAll(ctx);
      pending_flush_ = false;
      pending_page_invalidations_.clear();
      have_pending_ = false;
      return;
    }
    for (size_t n = 0; n < pending_page_invalidations_.size(); ++n) {
      uint32_t gpn = pending_page_invalidations_[n];
      auto it = page_blocks_.find(gpn);
      if (it != page_blocks_.end()) {
        std::vector<uint64_t> keys = std::move(it->second);
        for (uint64_t key : keys) {
          EraseBlock(key, ctx);
        }
      }
      // Superblocks splicing code from this page whose head lives elsewhere.
      auto tt = page_traces_.find(gpn);
      if (tt != page_traces_.end()) {
        std::vector<uint64_t> heads = std::move(tt->second);
        for (uint64_t head_key : heads) {
          auto bit = blocks_.find(head_key);
          if (bit != blocks_.end()) {
            KillTrace(bit->second);
          }
        }
        page_traces_.erase(gpn);
      }
      MaybeReleasePage(gpn);
    }
    pending_page_invalidations_.clear();
    have_pending_ = false;
  }

  // Clock sweep: evict cold or stale-epoch blocks until 1/8 of the capacity
  // is free. Hot blocks spend their reference bit to survive one sweep.
  void EvictForCapacity(VcpuContext& ctx) {
    size_t target = max_blocks_ - max_blocks_ / 8;
    if (target >= max_blocks_) {
      target = max_blocks_ > 0 ? max_blocks_ - 1 : 0;
    }
    size_t attempts = 2 * ring_.size() + 8;
    while (blocks_.size() > target && attempts-- > 0 && !ring_.empty()) {
      if (hand_ >= ring_.size()) {
        hand_ = 0;
      }
      uint64_t key = ring_[hand_];
      auto it = blocks_.find(key);
      if (it == blocks_.end()) {
        RemoveRingSlot(hand_);  // lazily drop keys of already-erased blocks
        continue;
      }
      Block& b = it->second;
      if (b.hot && b.map_gen == map_gen_) {
        b.hot = false;
        ++hand_;
        continue;
      }
      EraseBlock(key, ctx);
      RemoveRingSlot(hand_);
      ++ctx.stats.evictions_surgical;
    }
    if (blocks_.size() >= max_blocks_) {
      EvictAll(ctx);  // pathological fallback: everything stayed hot
    }
  }

  void RemoveRingSlot(size_t i) {
    ring_[i] = ring_.back();
    ring_.pop_back();
  }

  void CompactRing() {
    ring_.clear();
    ring_.reserve(blocks_.size());
    for (const auto& [key, b] : blocks_) {
      ring_.push_back(key);
    }
    hand_ = 0;
  }

  void EvictAll(VcpuContext& ctx) {
    ResetCaches();
    ++ctx.stats.evictions_full;
  }

  // Cache reset without the eviction stat: InstallTranslations replaces the
  // caches wholesale (that is provisioning, not an eviction).
  void ResetCaches() {
    blocks_.clear();
    page_blocks_.clear();
    page_traces_.clear();
    code_pages_.clear();
    ring_.clear();
    hand_ = 0;
    AbortRecording();
    ++chain_gen_;
  }

  DbtOptions options_;
  size_t max_blocks_;
  std::unordered_map<uint64_t, Block> blocks_;
  std::unordered_map<uint32_t, std::vector<uint64_t>> page_blocks_;
  // gpn → keys of heads whose trace splices code from that page.
  std::unordered_map<uint32_t, std::vector<uint64_t>> page_traces_;
  std::unordered_set<uint32_t> code_pages_;
  std::vector<uint32_t> pending_page_invalidations_;
  bool pending_flush_ = false;
  bool have_pending_ = false;

  uint64_t chain_gen_ = 1;  // cut-chains generation
  uint64_t map_gen_ = 1;    // translation-mapping epoch

  // Clock eviction state.
  std::vector<uint64_t> ring_;
  size_t hand_ = 0;

  // Trace recording state.
  bool recording_ = false;
  uint64_t recording_gen_ = 0;
  Block* trace_head_ = nullptr;
  std::vector<Block*> trace_blocks_;
};

}  // namespace

std::unique_ptr<ExecutionEngine> MakeDbtEngine(size_t max_blocks) {
  DbtOptions options;
  options.max_blocks = max_blocks;
  return std::make_unique<DbtEngine>(options);
}

std::unique_ptr<ExecutionEngine> MakeDbtEngine(const DbtOptions& options) {
  return std::make_unique<DbtEngine>(options);
}

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind) {
  return MakeEngine(kind, DbtOptions{});
}

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind,
                                            const DbtOptions& options) {
  switch (kind) {
    case EngineKind::kInterpreter:
      return MakeInterpreter();
    case EngineKind::kDbt:
      return MakeDbtEngine(options);
  }
  return nullptr;
}

}  // namespace hyperion::cpu
