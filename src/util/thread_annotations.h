// Clang thread-safety-analysis annotation macros.
//
// Under clang with -Wthread-safety (the HYPERION_THREAD_SAFETY=ON build,
// see tools/ci.sh), these expand to the capability attributes so the
// compiler proves lock discipline statically: every access to a
// HYP_GUARDED_BY(mu) member must happen with `mu` held, and functions
// marked HYP_REQUIRES(mu) can only be called under it. Under gcc (or with
// the analysis off) they expand to nothing.
//
// Shared state that is protected by the *phase* discipline rather than a
// mutex (SimClock's EventQueue, VirtualSwitch ports, the scheduler) is
// covered by the capability tokens in src/util/phase.h instead — see
// DESIGN.md §9 for which tool guards what.

#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define HYP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HYP_THREAD_ANNOTATION(x)
#endif

// Data members: which lock protects them.
#define HYP_GUARDED_BY(x) HYP_THREAD_ANNOTATION(guarded_by(x))
#define HYP_PT_GUARDED_BY(x) HYP_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: locks they need, take, or release.
#define HYP_REQUIRES(...) \
  HYP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HYP_ACQUIRE(...) HYP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HYP_RELEASE(...) HYP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HYP_EXCLUDES(...) HYP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Types: capabilities and RAII lock guards.
#define HYP_CAPABILITY(x) HYP_THREAD_ANNOTATION(capability(x))
#define HYP_SCOPED_CAPABILITY HYP_THREAD_ANNOTATION(scoped_lockable)

// Escape hatch for code the analysis cannot model (e.g. the lockless
// FramePool::RefCount read documented in frame_pool.h).
#define HYP_NO_THREAD_SAFETY_ANALYSIS \
  HYP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
