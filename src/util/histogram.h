// Simple statistics helpers for benchmark reporting: a streaming summary
// (min/max/mean/stddev) and a power-of-two bucketed histogram for latencies.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace hyperion {

// Welford's online mean/variance plus min/max.
class SummaryStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over uint64 samples with one bucket per power of two.
// Percentiles are estimated at bucket upper bounds — good enough for
// order-of-magnitude latency reporting.
class LogHistogram {
 public:
  void Add(uint64_t x) {
    ++buckets_[BucketOf(x)];
    ++count_;
    sum_ += x;
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0; }

  // Upper bound of the bucket containing the q-quantile (q in [0,1]).
  uint64_t Percentile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen > rank) {
        return BucketUpperBound(b);
      }
    }
    return BucketUpperBound(buckets_.size() - 1);
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

 private:
  static size_t BucketOf(uint64_t x) { return x == 0 ? 0 : static_cast<size_t>(std::bit_width(x)); }
  static uint64_t BucketUpperBound(size_t b) { return b == 0 ? 0 : (1ull << b) - 1; }

  std::array<uint64_t, 65> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Jain's fairness index over a set of allocations: (Σx)² / (n·Σx²).
// 1.0 is perfectly fair; 1/n is maximally unfair.
inline double JainFairness(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 1.0;
  }
  double sum = 0, sumsq = 0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

}  // namespace hyperion

#endif  // SRC_UTIL_HISTOGRAM_H_
