// The pending-event store behind SimClock: a min-heap of owner-tagged
// callbacks ordered by (time, schedule sequence).
//
// Owner tags solve a lifetime problem: device completions and timer wakes
// capture raw Vm*/device pointers, and a VM can be destroyed (DestroyVm,
// post-copy abort) while such events are still pending. Every event carries
// the owner id of the VM that scheduled it; Vm teardown calls CancelOwner to
// drop them before the pointers go stale. Owner 0 means "no owner" — those
// events (switch deliveries, migration timers) are never cancelled and must
// guard their own captures.
//
// The heap is an explicit vector (std::push_heap/pop_heap) rather than a
// std::priority_queue so CancelOwner can filter and re-heapify in place.

#ifndef SRC_UTIL_EVENT_QUEUE_H_
#define SRC_UTIL_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/phase.h"

namespace hyperion {

// Simulated time in cycles (1 cycle == 1 ns at the nominal 1 GHz).
using SimTime = uint64_t;

// The queue itself is protected by the phase discipline (src/util/phase.h),
// not a mutex: Push happens only under a direct-phase token (worker lanes
// stage instead), and Pop/CancelOwner only from serial code. Callbacks
// receive the dispatching loop's SerialPhase so they can perform direct
// effects (reschedule, deliver, wake) without re-acquiring a token.
class EventQueue {
 public:
  using Callback = std::function<void(const SerialPhase&)>;

  struct Event {
    SimTime when;
    uint64_t seq;    // tie-breaker: stable FIFO order among same-time events
    uint64_t owner;  // 0 = unowned (uncancellable)
    Callback fn;
  };

  void Push(SimTime when, uint64_t owner, Callback fn) {
    heap_.push_back(Event{when, seq_++, owner, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; callers must check empty() first.
  SimTime top_time() const { return heap_.front().when; }

  // Removes and returns the earliest event.
  Event Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  // Drops every pending event unconditionally (including owner-0 events);
  // returns how many. Cluster teardown uses this to release event-held
  // resources (frame payloads) while their owning pools are still alive.
  size_t Clear() {
    size_t dropped = heap_.size();
    heap_.clear();
    return dropped;
  }

  // Drops every pending event tagged with `owner`; returns how many.
  size_t CancelOwner(uint64_t owner) {
    size_t dropped = std::erase_if(
        heap_, [owner](const Event& ev) { return ev.owner == owner; });
    if (dropped != 0) {
      std::make_heap(heap_.begin(), heap_.end(), Later{});
    }
    return dropped;
  }

 private:
  // "a fires after b" — yields a min-heap under the std heap algorithms.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  uint64_t seq_ = 0;
};

}  // namespace hyperion

#endif  // SRC_UTIL_EVENT_QUEUE_H_
