// Minimal leveled logger.
//
// Logging is off by default (benchmarks must stay quiet); tests and examples
// raise the level explicitly. Thread-safe: the level is atomic and emission
// is serialized. While the staged execution core (DESIGN.md §8) runs vCPU
// slices on worker threads, each worker redirects its messages into a
// per-slice buffer (SetThreadLogSink); the host thread flushes the buffers
// at the round barrier in deterministic commit order, so log output is
// identical for any worker count.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

#include "src/util/phase.h"

namespace hyperion {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

bool LogEnabled(LogLevel level);

// Redirects this thread's log output into `sink` (nullptr restores direct
// stderr emission). Installed by the host run loop around each slice; the
// ExecutePhase token keeps worker-lane code from re-pointing the sink.
void SetThreadLogSink(const ExecutePhase&, std::string* sink);

// Writes already-formatted log text to stderr under the emission lock.
// Used by the run loop to flush staged per-slice buffers at commit; the
// direct-phase token keeps lanes from bypassing their slice buffer.
void WriteLogText(const DirectPhase&, const std::string& text);

// Accumulates one message and emits it to the thread's sink (or stderr) on
// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HYP_LOG(level)                                            \
  if (!::hyperion::internal::LogEnabled(::hyperion::LogLevel::level)) \
    ;                                                             \
  else                                                            \
    ::hyperion::internal::LogMessage(::hyperion::LogLevel::level, __FILE__, __LINE__)

}  // namespace hyperion

#endif  // SRC_UTIL_LOGGING_H_
