// Minimal leveled logger.
//
// Logging is off by default (benchmarks must stay quiet); tests and examples
// raise the level explicitly. Not thread-safe by design: the simulation is
// single-threaded (see DESIGN.md §4).

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace hyperion {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

bool LogEnabled(LogLevel level);

// Accumulates one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HYP_LOG(level)                                            \
  if (!::hyperion::internal::LogEnabled(::hyperion::LogLevel::level)) \
    ;                                                             \
  else                                                            \
    ::hyperion::internal::LogMessage(::hyperion::LogLevel::level, __FILE__, __LINE__)

}  // namespace hyperion

#endif  // SRC_UTIL_LOGGING_H_
