#include "src/util/byte_stream.h"

#include <bit>

namespace hyperion {

static_assert(std::endian::native == std::endian::little,
              "hyperion's serialization assumes a little-endian host");

}  // namespace hyperion
