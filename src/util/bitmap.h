// Dynamic bitmap with fast scan operations, used by the frame allocator and
// dirty-page logging.

#ifndef SRC_UTIL_BITMAP_H_
#define SRC_UTIL_BITMAP_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperion {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) { Resize(bits); }

  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  size_t size() const { return bits_; }

  bool Test(size_t i) const {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(size_t i) {
    assert(i < bits_);
    words_[i >> 6] |= (1ull << (i & 63));
  }

  void Clear(size_t i) {
    assert(i < bits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  void Assign(size_t i, bool v) { v ? Set(i) : Clear(i); }

  void ClearAll() { words_.assign(words_.size(), 0); }
  void SetAll() {
    words_.assign(words_.size(), ~0ull);
    TrimTail();
  }

  // Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<size_t>(std::popcount(w));
    }
    return n;
  }

  // Index of the first set (clear) bit at or after `from`; size() if none.
  size_t FindFirstSet(size_t from = 0) const { return FindFirst<true>(from); }
  size_t FindFirstClear(size_t from = 0) const { return FindFirst<false>(from); }

  // Collects the indices of all set bits (dirty-page harvesting).
  std::vector<size_t> SetBits() const {
    std::vector<size_t> out;
    out.reserve(Count());
    for (size_t i = FindFirstSet(); i < bits_; i = FindFirstSet(i + 1)) {
      out.push_back(i);
    }
    return out;
  }

  // Moves all set bits out of this bitmap into a fresh copy and clears them
  // here (atomic "harvest and reset" for dirty logging).
  Bitmap ExchangeClear() {
    Bitmap out;
    out.bits_ = bits_;
    out.words_ = words_;
    ClearAll();
    return out;
  }

  // Bitwise OR with another bitmap of the same size.
  void OrWith(const Bitmap& other) {
    assert(other.bits_ == bits_);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

 private:
  template <bool kSet>
  size_t FindFirst(size_t from) const {
    if (from >= bits_) {
      return bits_;
    }
    size_t word = from >> 6;
    uint64_t w = kSet ? words_[word] : ~words_[word];
    w &= ~0ull << (from & 63);
    while (true) {
      if (w != 0) {
        size_t i = (word << 6) + static_cast<size_t>(std::countr_zero(w));
        return i < bits_ ? i : bits_;
      }
      if (++word == words_.size()) {
        return bits_;
      }
      w = kSet ? words_[word] : ~words_[word];
    }
  }

  void TrimTail() {
    size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ull << tail) - 1;
    }
  }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hyperion

#endif  // SRC_UTIL_BITMAP_H_
