// Phase-capability tokens for the staged execution core (DESIGN.md §8/§9).
//
// The run loop alternates between three regimes:
//
//   * execute — vCPU slices running concurrently on worker lanes. All
//     cross-VM side effects (clock events, switch frames, frame decrefs,
//     wakes, log lines) must be *staged* into per-slice buffers.
//   * commit  — the host thread merging staged buffers at the round barrier,
//     in deterministic dispatch order.
//   * serial  — everything else: setup, teardown, clock callbacks, the
//     inter-round portions of Host::RunFor, tests.
//
// PR 5 enforced this split dynamically (thread-local stages + TSan). The
// token types below turn it into a *compile-time* discipline: staging-only
// APIs demand `const ExecutePhase&`, direct-effect APIs demand
// `const DirectPhase&` (of which CommitPhase and SerialPhase are the only
// concrete kinds), and the constructors are private to the host run loop —
// code running on a worker lane holds an ExecutePhase and has no way to
// manufacture the direct token that `SimClock::ScheduleOwned` or
// `VirtualSwitch::Send` require, so a forgotten staging call is a type error
// instead of a latent race. tests/negcompile/ pins this property.
//
// Tokens are evidence, not mechanism: the thread-local stage routing from
// PR 5 is unchanged underneath, and TSan still guards what the type system
// cannot see (see DESIGN.md §9 for the split).
//
// Dual-context code (device completions, migrate demand-fetch) that runs
// both inside slices and from serial callbacks takes `const Phase&` and lets
// a phase-dispatching wrapper (ClockRef::ScheduleAt, VirtualSwitch::Transmit,
// FramePool::DecRef(const Phase&, ...)) pick the staged or direct leaf.
//
// The one sanctioned acquisition point outside the run loop is
// ScopedSerialPhase, whose constructor asserts at runtime that the thread is
// not inside an execute phase: the capability is checked once where it is
// minted, and propagated statically everywhere else.

#ifndef SRC_UTIL_PHASE_H_
#define SRC_UTIL_PHASE_H_

#include <cassert>

namespace hyperion {

namespace core {
class Host;
class TimeDomain;
}  // namespace core

class ExecutePhase;
class DirectPhase;

// Common base: carries only the execute/direct discriminator so
// dual-context code can dispatch. Non-copyable — a token names the dynamic
// extent of a phase, it is not a value.
class Phase {
 public:
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  bool execute() const { return execute_; }

  // Downcasts for phase-dispatching wrappers; exactly one is non-null.
  const ExecutePhase* AsExecute() const;
  const DirectPhase* AsDirect() const;

 protected:
  explicit Phase(bool execute) : execute_(execute) {}
  ~Phase() = default;

 private:
  const bool execute_;
};

// Held by a worker lane for the duration of one vCPU slice. Grants access to
// staging APIs only. Minted exclusively by Host::ExecuteSlice; its lifetime
// also marks the thread as "inside execute" so ScopedSerialPhase can reject
// acquisition from a lane.
class ExecutePhase final : public Phase {
 private:
  ExecutePhase() : Phase(true) {
    assert(!tls_in_execute_);
    tls_in_execute_ = true;
  }
  ~ExecutePhase() { tls_in_execute_ = false; }

  static inline thread_local bool tls_in_execute_ = false;

  friend class core::Host;
  friend class ScopedSerialPhase;
};

// Base for the two direct-effect tokens. APIs that mutate shared state
// immediately (schedule on the live queue, deliver a frame, drop a frame
// refcount in place) take `const DirectPhase&`; worker lanes can never
// obtain one.
class DirectPhase : public Phase {
 protected:
  DirectPhase() : Phase(false) {}
  ~DirectPhase() = default;
};

// Held by the host thread while merging staged buffers at the round barrier.
// Minted exclusively by the domain round loop (TimeDomain::RunRound; Host
// retains friendship for its commit helpers).
class CommitPhase final : public DirectPhase {
 private:
  CommitPhase() = default;
  friend class core::Host;
  friend class core::TimeDomain;
};

// Held by single-threaded code between rounds: clock callbacks (every
// EventQueue::Callback receives one), setup/teardown, tests. Minted by the
// domain run loop, by Host, and by ScopedSerialPhase.
class SerialPhase final : public DirectPhase {
 private:
  SerialPhase() = default;
  friend class core::Host;
  friend class core::TimeDomain;
  friend class ScopedSerialPhase;
};

// Runtime-checked acquisition of a SerialPhase for code that is serial by
// construction but outside the run loop's static reach: test bodies,
// example mains, teardown paths, and the transparent-COW fallback in
// GuestMemory::Write. The assert is the single dynamic check backing the
// otherwise-static discipline — constructing one on a worker lane (inside
// an ExecutePhase) is a bug.
class ScopedSerialPhase {
 public:
  ScopedSerialPhase() { assert(!ExecutePhase::tls_in_execute_); }

  ScopedSerialPhase(const ScopedSerialPhase&) = delete;
  ScopedSerialPhase& operator=(const ScopedSerialPhase&) = delete;

  const SerialPhase& get() const { return phase_; }
  // NOLINTNEXTLINE(google-explicit-constructor): reads as the token itself.
  operator const SerialPhase&() const { return phase_; }

 private:
  SerialPhase phase_;
};

inline const ExecutePhase* Phase::AsExecute() const {
  return execute_ ? static_cast<const ExecutePhase*>(this) : nullptr;
}

inline const DirectPhase* Phase::AsDirect() const {
  return execute_ ? nullptr : static_cast<const DirectPhase*>(this);
}

}  // namespace hyperion

#endif  // SRC_UTIL_PHASE_H_
