// CRC-32 (IEEE 802.3 polynomial, reflected) used for image checksums and as
// the fast first-pass hash in content-based page sharing.

#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hyperion {

// One-shot CRC over a buffer. `seed` allows incremental chaining:
// Crc32(b, n2, Crc32(a, n1)) == CRC of a||b.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace hyperion

#endif  // SRC_UTIL_CRC32_H_
