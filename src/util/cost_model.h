// Simulated cycle prices for virtualization events.
//
// Hyperion charges a fixed simulated-cycle cost per event class instead of
// measuring host wall-clock time, which keeps experiments deterministic.
// The defaults are calibrated to era-typical *ratios* (a VM exit costs
// hundreds of guest instructions; a 2-D page walk costs ~4x a native walk;
// MMIO emulation is the slowest path), which is what the benchmark shapes
// depend on. Absolute values are in cycles of the nominal 1 GHz machine.
//
// This header is cross-cutting configuration used by the CPU, MMU, device
// and VMM layers alike, which is why it lives in util.

#ifndef SRC_UTIL_COST_MODEL_H_
#define SRC_UTIL_COST_MODEL_H_

#include <cstdint>

namespace hyperion {

struct CostModel {
  // Base cost of retiring one guest instruction.
  uint64_t guest_insn = 1;

  // Memory virtualization.
  uint64_t tlb_hit = 0;            // extra cost on a software-TLB hit
  uint64_t tlb_fill = 12;          // installing a TLB entry
  uint64_t pt_walk_step = 25;      // one page-table memory reference
  uint64_t shadow_sync_entry = 90; // constructing one shadow entry (VMM work)
  uint64_t shadow_root_switch = 350;   // activating a cached shadow root
  uint64_t shadow_root_build = 3000;   // materializing a new shadow root
  uint64_t dirty_log_first_write = 60; // write-protect fault per page per round

  // VM exits and emulation.
  uint64_t vm_exit = 900;       // world-switch round trip (save/restore state)
  uint64_t emulate_insn = 250;  // software decode+execute of one guest insn
  uint64_t mmio_access = 350;   // device-register dispatch on top of the exit
  uint64_t hypercall = 180;     // streamlined paravirtual exit handling
  uint64_t interrupt_inject = 60;
  uint64_t cow_break = 1400;    // allocate + copy a 4 KiB page + remap
  uint64_t context_switch = 3000;  // vCPU switch on a pCPU (state + cache refill)

  // Devices.
  uint64_t irq_latency = 200;       // line assertion to vCPU delivery
  uint64_t blk_sector_cost = 2200;  // storage backend per 512-byte sector
  uint64_t virtio_kick = 150;       // doorbell processing (beyond the exit)

  // The canonical cost model used throughout hyperion.
  static const CostModel& Default() {
    static const CostModel model;
    return model;
  }
};

}  // namespace hyperion

#endif  // SRC_UTIL_COST_MODEL_H_
