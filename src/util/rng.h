// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomness in hyperion flows through a seeded Xoshiro256 so that every
// experiment is exactly reproducible (DESIGN.md §4).

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace hyperion {

// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
// seeded through splitmix64 so any 64-bit seed yields a good state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace hyperion

#endif  // SRC_UTIL_RNG_H_
