// Simulated time.
//
// Hyperion is an event-driven simulation: all durations are expressed in
// simulated cycles of a nominal 1 GHz machine, so 1 cycle == 1 ns. The clock
// only moves when the simulation advances it, which makes every run
// deterministic regardless of host speed.

#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hyperion {

// Simulated time in cycles (1 cycle == 1 ns at the nominal 1 GHz).
using SimTime = uint64_t;

constexpr SimTime kSimTicksPerUs = 1000;
constexpr SimTime kSimTicksPerMs = 1000 * kSimTicksPerUs;
constexpr SimTime kSimTicksPerSec = 1000 * kSimTicksPerMs;

inline double SimTimeToMs(SimTime t) { return static_cast<double>(t) / kSimTicksPerMs; }
inline double SimTimeToUs(SimTime t) { return static_cast<double>(t) / kSimTicksPerUs; }
inline double SimTimeToSec(SimTime t) { return static_cast<double>(t) / kSimTicksPerSec; }

// A monotonically advancing simulated clock with a pending-event queue.
// Events scheduled at the same time fire in scheduling order (stable).
class SimClock {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now).
  void ScheduleAt(SimTime when, Callback fn) {
    assert(when >= now_);
    queue_.push(Event{when, seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` cycles from now.
  void ScheduleAfter(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Moves time forward by `delta` without running events (callers that manage
  // their own event dispatch, e.g. the vCPU run loop, use this).
  void Advance(SimTime delta) { now_ += delta; }

  // Advances to `when`, firing every event due on the way, in order.
  void RunUntil(SimTime when) {
    while (!queue_.empty() && queue_.top().when <= when) {
      Event ev = PopTop();
      now_ = ev.when;
      ev.fn();
    }
    if (when > now_) {
      now_ = when;
    }
  }

  // Runs events until the queue drains (or `max_events` fire). Returns the
  // number of events dispatched.
  size_t RunAll(size_t max_events = SIZE_MAX) {
    size_t fired = 0;
    while (!queue_.empty() && fired < max_events) {
      Event ev = PopTop();
      now_ = ev.when;
      ev.fn();
      ++fired;
    }
    return fired;
  }

  bool HasPending() const { return !queue_.empty(); }
  SimTime NextEventTime() const {
    assert(!queue_.empty());
    return queue_.top().when;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-breaker: stable FIFO order among same-time events
    Callback fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  Event PopTop() {
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because pop() immediately removes the slot.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace hyperion

#endif  // SRC_UTIL_SIM_CLOCK_H_
