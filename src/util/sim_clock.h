// Simulated time.
//
// Hyperion is an event-driven simulation: all durations are expressed in
// simulated cycles of a nominal 1 GHz machine, so 1 cycle == 1 ns. The clock
// only moves when the simulation advances it, which makes every run
// deterministic regardless of host speed.
//
// Staged execution (DESIGN.md §8): while the host run loop executes vCPU
// slices on worker threads, the shared event queue must not be touched
// concurrently. A worker installs a thread-local SimClock::Stage for the
// duration of a slice; now() then reads the slice's start time (the value the
// serial loop would have seen, since the clock never moves mid-slice) and
// Stage* calls append to the stage instead of the queue. The host thread
// merges stages at the round barrier with CommitStage, in deterministic
// dispatch order, so the final queue contents are identical for any worker
// count — including zero.
//
// Phase discipline (DESIGN.md §9): the direct-effect entry points
// (ScheduleOwned/ScheduleAt/ScheduleAfter, RunUntil/RunAll, CommitStage)
// demand a direct-phase capability token that worker lanes can never hold;
// lanes use the Stage* counterparts, which demand an ExecutePhase. Code that
// runs in both regimes dispatches through ClockRef. Underneath, both leaves
// share the PR 5 thread-local routing, so the tokens add a static gate
// without changing behavior: a direct call against a *different* clock than
// the staged one (the two-host migration case) still goes straight to that
// clock's queue, exactly as before.

#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/event_queue.h"
#include "src/util/phase.h"

namespace hyperion {

constexpr SimTime kSimTicksPerUs = 1000;
constexpr SimTime kSimTicksPerMs = 1000 * kSimTicksPerUs;
constexpr SimTime kSimTicksPerSec = 1000 * kSimTicksPerMs;

inline double SimTimeToMs(SimTime t) { return static_cast<double>(t) / kSimTicksPerMs; }
inline double SimTimeToUs(SimTime t) { return static_cast<double>(t) / kSimTicksPerUs; }
inline double SimTimeToSec(SimTime t) { return static_cast<double>(t) / kSimTicksPerSec; }

// A monotonically advancing simulated clock with a pending-event queue.
// Events scheduled at the same time fire in scheduling order (stable).
class SimClock {
 public:
  using Callback = EventQueue::Callback;

  // Normalizes a callable into a Callback: phase-taking lambdas pass
  // through; zero-argument lambdas (events that perform no direct effects
  // themselves) are wrapped so existing call sites stay terse.
  template <typename F>
  static Callback WrapCallback(F&& fn) {
    if constexpr (std::is_invocable_v<std::decay_t<F>&, const SerialPhase&>) {
      return Callback(std::forward<F>(fn));
    } else {
      return Callback(
          [f = std::forward<F>(fn)](const SerialPhase&) mutable { f(); });
    }
  }

  // Per-slice staging buffer (see the file comment). `clock` names the
  // instance being staged for — two hosts coexist during live migration, and
  // only calls against the staged instance are intercepted.
  struct Stage {
    SimClock* clock = nullptr;
    SimTime vnow = 0;  // the slice's start time, frozen for the whole slice
    struct Staged {
      SimTime when;
      uint64_t owner;
      Callback fn;
    };
    std::vector<Staged> events;
  };

  // Installs `stage` as the current thread's staging buffer (nullptr to
  // clear). Only the host run loop does this, around each slice.
  static void SetStage(const ExecutePhase&, Stage* stage) { tls_stage_ = stage; }
  static Stage* CurrentStage() { return tls_stage_; }

  SimTime now() const {
    const Stage* s = tls_stage_;
    return (s != nullptr && s->clock == this) ? s->vnow : now_;
  }

  // --- Direct scheduling (serial / commit phases only) --------------------

  // Schedules `fn` to run at absolute time `when` (>= now), tagged with
  // `owner` (see EventQueue; 0 = uncancellable).
  template <typename F>
  void ScheduleOwned(const DirectPhase&, SimTime when, uint64_t owner, F fn) {
    ScheduleOwnedAny(when, owner, WrapCallback(std::move(fn)));
  }

  // Schedules `fn` to run at absolute time `when` (>= now).
  template <typename F>
  void ScheduleAt(const DirectPhase& ph, SimTime when, F fn) {
    ScheduleOwned(ph, when, 0, std::move(fn));
  }

  // Schedules `fn` to run `delay` cycles from now.
  template <typename F>
  void ScheduleAfter(const DirectPhase& ph, SimTime delay, F fn) {
    ScheduleOwned(ph, now() + delay, 0, std::move(fn));
  }

  // --- Staged scheduling (execute phase: worker lanes) --------------------

  // Appends to the executing slice's stage (or, for a clock other than the
  // staged one, falls through to that clock's queue — see the file comment).
  template <typename F>
  void StageOwned(const ExecutePhase&, SimTime when, uint64_t owner, F fn) {
    ScheduleOwnedAny(when, owner, WrapCallback(std::move(fn)));
  }

  template <typename F>
  void StageAt(const ExecutePhase& ph, SimTime when, F fn) {
    StageOwned(ph, when, 0, std::move(fn));
  }

  template <typename F>
  void StageAfter(const ExecutePhase& ph, SimTime delay, F fn) {
    StageOwned(ph, now() + delay, 0, std::move(fn));
  }

  // Merges a slice's staged events into the queue, in staging order. Called
  // at the round barrier; each staged `when` was validated against the
  // slice's vnow, which is never before the queue's current time.
  void CommitStage(const CommitPhase&, Stage& stage) {
    for (Stage::Staged& ev : stage.events) {
      assert(ev.when >= now_);
      queue_.Push(ev.when, ev.owner, std::move(ev.fn));
    }
    stage.events.clear();
  }

  // Returns a fresh nonzero owner id for event tagging.
  uint64_t NewOwner() { return ++last_owner_; }

  // Drops every pending event tagged with `owner` (VM teardown). Staged
  // events never survive to a teardown point: teardown only happens between
  // rounds, after every stage has been committed.
  size_t CancelOwner(const DirectPhase&, uint64_t owner) {
    return owner == 0 ? 0 : queue_.CancelOwner(owner);
  }

  // Drops every pending event, owned or not, without running it. Multi-host
  // teardown only: pending deliveries hold frame payloads that must release
  // into their member hosts' pools before those pools are destroyed, so the
  // owning Cluster clears the shared queue before tearing members down.
  size_t DiscardPending(const DirectPhase&) { return queue_.Clear(); }

  // Moves time forward by `delta` without running events (callers that manage
  // their own event dispatch, e.g. the vCPU run loop, use this).
  void Advance(const DirectPhase&, SimTime delta) { now_ += delta; }

  // Advances to `when`, firing every event due on the way, in order. The
  // caller's serial token is handed to each callback.
  void RunUntil(const SerialPhase& ph, SimTime when) {
    while (!queue_.empty() && queue_.top_time() <= when) {
      EventQueue::Event ev = queue_.Pop();
      now_ = ev.when;
      ev.fn(ph);
    }
    if (when > now_) {
      now_ = when;
    }
  }

  // Runs events until the queue drains (or `max_events` fire). Returns the
  // number of events dispatched.
  size_t RunAll(const SerialPhase& ph, size_t max_events = SIZE_MAX) {
    size_t fired = 0;
    while (!queue_.empty() && fired < max_events) {
      EventQueue::Event ev = queue_.Pop();
      now_ = ev.when;
      ev.fn(ph);
      ++fired;
    }
    return fired;
  }

  bool HasPending() const { return !queue_.empty(); }
  SimTime NextEventTime() const {
    assert(!queue_.empty());
    return queue_.top_time();
  }

 private:
  // Shared leaf under both token-typed entry points: stage when the current
  // thread is staging for this clock, push directly otherwise. Identical to
  // the PR 5 ScheduleOwned body.
  void ScheduleOwnedAny(SimTime when, uint64_t owner, Callback fn) {
    Stage* s = tls_stage_;
    if (s != nullptr && s->clock == this) {
      assert(when >= s->vnow);
      s->events.push_back(Stage::Staged{when, owner, std::move(fn)});
      return;
    }
    assert(when >= now_);
    queue_.Push(when, owner, std::move(fn));
  }

  static inline thread_local Stage* tls_stage_ = nullptr;

  SimTime now_ = 0;
  uint64_t last_owner_ = 0;
  EventQueue queue_;
};

// A clock handle that tags everything it schedules with a fixed owner id.
// Devices hold one instead of a raw SimClock* so that their completion
// events die with the VM that owns them (Vm::~Vm cancels the owner).
// Implicitly convertible from SimClock* — an untagged ref behaves exactly
// like the raw pointer did.
//
// ClockRef is the phase-dispatching wrapper for dual-context code: device
// completion paths run both inside slices (doorbell MMIO from a worker
// lane) and from serial callbacks (snapshot restore, tests), so its
// Schedule* methods take `const Phase&` and route to the staged or direct
// leaf accordingly.
class ClockRef {
 public:
  ClockRef() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for SimClock*.
  ClockRef(SimClock* clock, uint64_t owner = 0) : clock_(clock), owner_(owner) {}

  bool valid() const { return clock_ != nullptr; }
  SimClock* clock() const { return clock_; }
  uint64_t owner() const { return owner_; }

  SimTime now() const { return clock_->now(); }

  template <typename F>
  void ScheduleAt(const Phase& ph, SimTime when, F fn) {
    if (const ExecutePhase* ep = ph.AsExecute()) {
      clock_->StageOwned(*ep, when, owner_, std::move(fn));
    } else {
      clock_->ScheduleOwned(*ph.AsDirect(), when, owner_, std::move(fn));
    }
  }

  template <typename F>
  void ScheduleAfter(const Phase& ph, SimTime delay, F fn) {
    ScheduleAt(ph, clock_->now() + delay, std::move(fn));
  }

 private:
  SimClock* clock_ = nullptr;
  uint64_t owner_ = 0;
};

}  // namespace hyperion

#endif  // SRC_UTIL_SIM_CLOCK_H_
