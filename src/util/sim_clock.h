// Simulated time.
//
// Hyperion is an event-driven simulation: all durations are expressed in
// simulated cycles of a nominal 1 GHz machine, so 1 cycle == 1 ns. The clock
// only moves when the simulation advances it, which makes every run
// deterministic regardless of host speed.
//
// Staged execution (DESIGN.md §8): while the host run loop executes vCPU
// slices on worker threads, the shared event queue must not be touched
// concurrently. A worker installs a thread-local SimClock::Stage for the
// duration of a slice; now() then reads the slice's start time (the value the
// serial loop would have seen, since the clock never moves mid-slice) and
// Schedule* calls append to the stage instead of the queue. The host thread
// merges stages at the round barrier with CommitStage, in deterministic
// dispatch order, so the final queue contents are identical for any worker
// count — including zero.

#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/event_queue.h"

namespace hyperion {

constexpr SimTime kSimTicksPerUs = 1000;
constexpr SimTime kSimTicksPerMs = 1000 * kSimTicksPerUs;
constexpr SimTime kSimTicksPerSec = 1000 * kSimTicksPerMs;

inline double SimTimeToMs(SimTime t) { return static_cast<double>(t) / kSimTicksPerMs; }
inline double SimTimeToUs(SimTime t) { return static_cast<double>(t) / kSimTicksPerUs; }
inline double SimTimeToSec(SimTime t) { return static_cast<double>(t) / kSimTicksPerSec; }

// A monotonically advancing simulated clock with a pending-event queue.
// Events scheduled at the same time fire in scheduling order (stable).
class SimClock {
 public:
  using Callback = EventQueue::Callback;

  // Per-slice staging buffer (see the file comment). `clock` names the
  // instance being staged for — two hosts coexist during live migration, and
  // only calls against the staged instance are intercepted.
  struct Stage {
    SimClock* clock = nullptr;
    SimTime vnow = 0;  // the slice's start time, frozen for the whole slice
    struct Staged {
      SimTime when;
      uint64_t owner;
      Callback fn;
    };
    std::vector<Staged> events;
  };

  // Installs `stage` as the current thread's staging buffer (nullptr to
  // clear). Only the host run loop does this, around each slice.
  static void SetStage(Stage* stage) { tls_stage_ = stage; }
  static Stage* CurrentStage() { return tls_stage_; }

  SimTime now() const {
    const Stage* s = tls_stage_;
    return (s != nullptr && s->clock == this) ? s->vnow : now_;
  }

  // Schedules `fn` to run at absolute time `when` (>= now), tagged with
  // `owner` (see EventQueue; 0 = uncancellable).
  void ScheduleOwned(SimTime when, uint64_t owner, Callback fn) {
    Stage* s = tls_stage_;
    if (s != nullptr && s->clock == this) {
      assert(when >= s->vnow);
      s->events.push_back(Stage::Staged{when, owner, std::move(fn)});
      return;
    }
    assert(when >= now_);
    queue_.Push(when, owner, std::move(fn));
  }

  // Schedules `fn` to run at absolute time `when` (>= now).
  void ScheduleAt(SimTime when, Callback fn) { ScheduleOwned(when, 0, std::move(fn)); }

  // Schedules `fn` to run `delay` cycles from now.
  void ScheduleAfter(SimTime delay, Callback fn) { ScheduleAt(now() + delay, std::move(fn)); }

  // Merges a slice's staged events into the queue, in staging order. Called
  // at the round barrier; each staged `when` was validated against the
  // slice's vnow, which is never before the queue's current time.
  void CommitStage(Stage& stage) {
    for (Stage::Staged& ev : stage.events) {
      assert(ev.when >= now_);
      queue_.Push(ev.when, ev.owner, std::move(ev.fn));
    }
    stage.events.clear();
  }

  // Returns a fresh nonzero owner id for event tagging.
  uint64_t NewOwner() { return ++last_owner_; }

  // Drops every pending event tagged with `owner` (VM teardown). Staged
  // events never survive to a teardown point: teardown only happens between
  // rounds, after every stage has been committed.
  size_t CancelOwner(uint64_t owner) {
    return owner == 0 ? 0 : queue_.CancelOwner(owner);
  }

  // Moves time forward by `delta` without running events (callers that manage
  // their own event dispatch, e.g. the vCPU run loop, use this).
  void Advance(SimTime delta) { now_ += delta; }

  // Advances to `when`, firing every event due on the way, in order.
  void RunUntil(SimTime when) {
    while (!queue_.empty() && queue_.top_time() <= when) {
      EventQueue::Event ev = queue_.Pop();
      now_ = ev.when;
      ev.fn();
    }
    if (when > now_) {
      now_ = when;
    }
  }

  // Runs events until the queue drains (or `max_events` fire). Returns the
  // number of events dispatched.
  size_t RunAll(size_t max_events = SIZE_MAX) {
    size_t fired = 0;
    while (!queue_.empty() && fired < max_events) {
      EventQueue::Event ev = queue_.Pop();
      now_ = ev.when;
      ev.fn();
      ++fired;
    }
    return fired;
  }

  bool HasPending() const { return !queue_.empty(); }
  SimTime NextEventTime() const {
    assert(!queue_.empty());
    return queue_.top_time();
  }

 private:
  static inline thread_local Stage* tls_stage_ = nullptr;

  SimTime now_ = 0;
  uint64_t last_owner_ = 0;
  EventQueue queue_;
};

// A clock handle that tags everything it schedules with a fixed owner id.
// Devices hold one instead of a raw SimClock* so that their completion
// events die with the VM that owns them (Vm::~Vm cancels the owner).
// Implicitly convertible from SimClock* — an untagged ref behaves exactly
// like the raw pointer did.
class ClockRef {
 public:
  ClockRef() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for SimClock*.
  ClockRef(SimClock* clock, uint64_t owner = 0) : clock_(clock), owner_(owner) {}

  bool valid() const { return clock_ != nullptr; }
  SimClock* clock() const { return clock_; }
  uint64_t owner() const { return owner_; }

  SimTime now() const { return clock_->now(); }
  void ScheduleAt(SimTime when, SimClock::Callback fn) {
    clock_->ScheduleOwned(when, owner_, std::move(fn));
  }
  void ScheduleAfter(SimTime delay, SimClock::Callback fn) {
    ScheduleAt(clock_->now() + delay, std::move(fn));
  }

 private:
  SimClock* clock_ = nullptr;
  uint64_t owner_ = 0;
};

}  // namespace hyperion

#endif  // SRC_UTIL_SIM_CLOCK_H_
