#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hyperion {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
thread_local std::string* t_sink = nullptr;

std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

bool LogEnabled(LogLevel level) {
  LogLevel min = g_level.load(std::memory_order_relaxed);
  return level >= min && min != LogLevel::kOff;
}

void SetThreadLogSink(const ExecutePhase&, std::string* sink) { t_sink = sink; }

void WriteLogText(const DirectPhase&, const std::string& text) {
  if (text.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(text.data(), 1, text.size(), stderr);
}

LogMessage::LogMessage(LogLevel level, std::string_view file, int line) : level_(level) {
  // Strip the directory part; the basename is enough to locate the call site.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file = file.substr(slash + 1);
  }
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::string text = stream_.str();
  if (t_sink != nullptr) {
    *t_sink += text;
    return;
  }
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fputs(text.c_str(), stderr);
}

}  // namespace internal
}  // namespace hyperion
