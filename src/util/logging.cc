#include "src/util/logging.h"

#include <cstdio>

namespace hyperion {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

bool LogEnabled(LogLevel level) { return level >= g_level && g_level != LogLevel::kOff; }

LogMessage::LogMessage(LogLevel level, std::string_view file, int line) : level_(level) {
  // Strip the directory part; the basename is enough to locate the call site.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file = file.substr(slash + 1);
  }
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace hyperion
