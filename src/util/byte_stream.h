// Little-endian byte cursors used for VM snapshots, disk-image metadata and
// the migration wire format. ByteWriter appends to an owned buffer;
// ByteReader walks a borrowed span and fails softly (Status) on truncation.

#ifndef SRC_UTIL_BYTE_STREAM_H_
#define SRC_UTIL_BYTE_STREAM_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace hyperion {

// Appends little-endian primitives and length-prefixed blobs to a buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v) { AppendLe(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendLe(&v, sizeof(v)); }

  void WriteBytes(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  // u32 length prefix followed by the raw bytes.
  void WriteBlob(std::span<const uint8_t> blob) {
    WriteU32(static_cast<uint32_t>(blob.size()));
    WriteBytes(blob.data(), blob.size());
  }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  // Overwrites 4 bytes at `offset` (for back-patching section sizes).
  void PatchU32(size_t offset, uint32_t v) {
    std::memcpy(buffer_.data() + offset, &v, sizeof(v));
  }

 private:
  void AppendLe(const void* v, size_t size) {
    // Host is little-endian on every supported platform; a static_assert in
    // byte_stream.cc guards the assumption.
    WriteBytes(v, size);
  }

  std::vector<uint8_t> buffer_;
};

// Reads little-endian primitives from a borrowed buffer with bounds checks.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8() { return ReadScalar<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadScalar<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadScalar<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadScalar<uint64_t>(); }

  Status ReadBytes(void* out, size_t size) {
    if (remaining() < size) {
      return DataLossError("byte stream truncated");
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return OkStatus();
  }

  // Reads a u32-length-prefixed blob.
  Result<std::vector<uint8_t>> ReadBlob() {
    HYP_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
    if (remaining() < size) {
      return DataLossError("blob truncated");
    }
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + size));
    pos_ += size;
    return out;
  }

  Result<std::string> ReadString() {
    HYP_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
    if (remaining() < size) {
      return DataLossError("string truncated");
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return out;
  }

  Status Skip(size_t size) {
    if (remaining() < size) {
      return DataLossError("skip past end of stream");
    }
    pos_ += size;
    return OkStatus();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> ReadScalar() {
    if (remaining() < sizeof(T)) {
      return DataLossError("byte stream truncated");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace hyperion

#endif  // SRC_UTIL_BYTE_STREAM_H_
