// Error-handling primitives for hyperion.
//
// Library code does not throw exceptions (kernel-style discipline); fallible
// operations return Status or Result<T>. Both are cheap value types.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hyperion {

// Coarse error taxonomy. Modules attach detail via the message string.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup missed
  kAlreadyExists,     // uniqueness violated
  kOutOfRange,        // address/index outside a valid region
  kResourceExhausted, // out of frames, descriptors, credits, ...
  kFailedPrecondition,// object in the wrong state for the call
  kUnimplemented,     // feature intentionally absent
  kDataLoss,          // corrupt image / bad checksum
  kInternal,          // invariant violated (a bug)
  kUnavailable,       // transient failure (fault injection, link down); retryable
  kAborted,           // operation gave up after retries; state rolled back
};

// Returns a stable human-readable name, e.g. "OUT_OF_RANGE".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() or OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "OUT_OF_RANGE: gpa 0xdeadbeef past end of RAM".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

// Convenience constructors mirroring StatusCode.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);

// A value-or-error. Access to value() on an error aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(implicit)
  Result(Status status) : data_(std::in_place_index<1>, std::move(status)) {  // NOLINT(implicit)
    assert(!std::get<1>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return data_.index() == 0; }

  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  // The error status; OkStatus() if the result holds a value.
  Status status() const { return ok() ? OkStatus() : std::get<1>(data_); }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<0>(data_) : fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagate an error Status from an expression that yields Status.
#define HYP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::hyperion::Status hyp_status_ = (expr);   \
    if (!hyp_status_.ok()) return hyp_status_; \
  } while (0)

// Assign the value of a Result<T> expression or propagate its error.
// Usage: HYP_ASSIGN_OR_RETURN(auto frame, pool.Allocate());
#define HYP_ASSIGN_OR_RETURN(decl, expr)                \
  HYP_ASSIGN_OR_RETURN_IMPL_(                           \
      HYP_STATUS_CONCAT_(hyp_result_, __LINE__), decl, expr)

#define HYP_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  decl = std::move(tmp).value()

#define HYP_STATUS_CONCAT_(a, b) HYP_STATUS_CONCAT_IMPL_(a, b)
#define HYP_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace hyperion

#endif  // SRC_UTIL_STATUS_H_
