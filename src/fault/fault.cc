#include "src/fault/fault.h"

#include <algorithm>

namespace hyperion::fault {

namespace {

// Stream-splitting constant (golden-ratio based, same family as splitmix64):
// event i draws from seed ^ (i+1)*kStreamSalt so sibling streams decorrelate.
constexpr uint64_t kStreamSalt = 0x9E3779B97F4A7C15ull;

bool AddrMatches(const std::vector<uint32_t>& filter, uint32_t addr) {
  if (filter.empty()) {
    return true;
  }
  return std::find(filter.begin(), filter.end(), addr) != filter.end();
}

constexpr uint64_t kTearSector = 512;

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameDrop:
      return "FRAME_DROP";
    case FaultKind::kFrameDuplicate:
      return "FRAME_DUPLICATE";
    case FaultKind::kFrameReorder:
      return "FRAME_REORDER";
    case FaultKind::kLatencySpike:
      return "LATENCY_SPIKE";
    case FaultKind::kLinkDown:
      return "LINK_DOWN";
    case FaultKind::kReadError:
      return "READ_ERROR";
    case FaultKind::kWriteError:
      return "WRITE_ERROR";
    case FaultKind::kTornWrite:
      return "TORN_WRITE";
    case FaultKind::kHostPause:
      return "HOST_PAUSE";
    case FaultKind::kHostCrash:
      return "HOST_CRASH";
  }
  return "UNKNOWN";
}

// --- FaultPlan helpers ------------------------------------------------------

void FaultPlan::AddLinkDown(std::string site, SimTime from, SimTime until) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kLinkDown;
  e.from = from;
  e.until = until;
  Add(std::move(e));
}

void FaultPlan::AddTransferLoss(std::string site, double probability,
                                SimTime from, SimTime until) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kFrameDrop;
  e.from = from;
  e.until = until;
  e.probability = probability;
  Add(std::move(e));
}

void FaultPlan::AddDropOnce(std::string site, uint64_t op_index) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kFrameDrop;
  e.first_op = op_index;
  e.last_op = op_index;
  Add(std::move(e));
}

void FaultPlan::AddLatencySpike(std::string site, SimTime extra,
                                double probability, SimTime from,
                                SimTime until) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kLatencySpike;
  e.from = from;
  e.until = until;
  e.probability = probability;
  e.param = extra;
  Add(std::move(e));
}

void FaultPlan::AddReadError(std::string site, uint64_t first_op,
                             uint64_t count) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kReadError;
  e.first_op = first_op;
  e.last_op = first_op + count - 1;
  Add(std::move(e));
}

void FaultPlan::AddWriteError(std::string site, uint64_t first_op,
                              uint64_t count) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kWriteError;
  e.first_op = first_op;
  e.last_op = first_op + count - 1;
  Add(std::move(e));
}

void FaultPlan::AddTornWrite(std::string site, uint64_t op_index) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kTornWrite;
  e.first_op = op_index;
  e.last_op = op_index;
  Add(std::move(e));
}

void FaultPlan::AddHostPause(std::string site, SimTime from, SimTime until) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kHostPause;
  e.from = from;
  e.until = until;
  Add(std::move(e));
}

void FaultPlan::AddHostCrash(std::string site, SimTime at) {
  FaultEvent e;
  e.site = std::move(site);
  e.kind = FaultKind::kHostCrash;
  e.from = at;
  Add(std::move(e));
}

void FaultPlan::AddPartition(std::string site, std::vector<uint32_t> a,
                             std::vector<uint32_t> b, SimTime from,
                             SimTime until) {
  FaultEvent fwd;
  fwd.site = site;
  fwd.kind = FaultKind::kFrameDrop;
  fwd.from = from;
  fwd.until = until;
  fwd.src_filter = a;
  fwd.dst_filter = b;
  Add(std::move(fwd));
  FaultEvent rev;
  rev.site = std::move(site);
  rev.kind = FaultKind::kFrameDrop;
  rev.from = from;
  rev.until = until;
  rev.src_filter = std::move(b);
  rev.dst_filter = std::move(a);
  Add(std::move(rev));
}

FaultPlan FaultPlan::Random(uint64_t seed, const ChaosProfile& profile) {
  FaultPlan plan;
  plan.seed = seed;
  Xoshiro256 rng(seed ^ kStreamSalt);
  uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(profile.max_events));
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t shapes = profile.host_site.empty() ? 4 : 5;
    uint64_t shape = rng.NextBelow(shapes);
    SimTime from = rng.NextBelow(profile.horizon);
    switch (shape) {
      case 0: {  // sustained random transfer loss
        double p = 0.02 + 0.33 * rng.NextDouble();
        SimTime dur = rng.NextInRange(10 * kSimTicksPerMs, profile.horizon);
        plan.AddTransferLoss(profile.link_site, p, from, from + dur);
        break;
      }
      case 1: {  // link outage
        SimTime dur = rng.NextInRange(kSimTicksPerMs, 300 * kSimTicksPerMs);
        plan.AddLinkDown(profile.link_site, from, from + dur);
        break;
      }
      case 2: {  // latency spikes
        SimTime extra = rng.NextInRange(10 * kSimTicksPerUs, 5 * kSimTicksPerMs);
        double p = 0.05 + 0.45 * rng.NextDouble();
        plan.AddLatencySpike(profile.link_site, extra, p);
        break;
      }
      case 3: {  // lose one specific early transfer
        plan.AddDropOnce(profile.link_site, rng.NextBelow(400));
        break;
      }
      default: {  // host stall window
        SimTime dur = rng.NextInRange(kSimTicksPerMs, 100 * kSimTicksPerMs);
        plan.AddHostPause(profile.host_site, from, from + dur);
        break;
      }
    }
  }
  return plan;
}

// --- FaultInjector ----------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  streams_.reserve(plan_.events.size());
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    streams_.emplace_back(plan_.seed ^ ((i + 1) * kStreamSalt));
  }
  consumed_.assign(plan_.events.size(), false);
}

bool FaultInjector::Armed(const FaultEvent& event, const std::string& site,
                          SimTime now, uint64_t op) const {
  if (!event.site.empty() && event.site != site) {
    return false;
  }
  if (now < event.from || now >= event.until) {
    return false;
  }
  return op >= event.first_op && op <= event.last_op;
}

bool FaultInjector::Fires(size_t event_index, const std::string& site,
                          SimTime now, uint64_t op) {
  const FaultEvent& event = plan_.events[event_index];
  if (!Armed(event, site, now, op)) {
    return false;
  }
  if (event.probability >= 1.0) {
    return true;
  }
  return streams_[event_index].NextBool(event.probability);
}

uint64_t FaultInjector::BumpOp(const std::string& site, OpClass cls) {
  return op_counts_[{site, static_cast<uint8_t>(cls)}]++;
}

uint64_t FaultInjector::OpCount(const std::string& site, OpClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = op_counts_.find({site, static_cast<uint8_t>(cls)});
  return it == op_counts_.end() ? 0 : it->second;
}

FrameFault FaultInjector::OnFrame(const std::string& site, SimTime now,
                                  uint32_t src, uint32_t dst) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t op = BumpOp(site, OpClass::kFrame);
  FrameFault out;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    switch (event.kind) {
      case FaultKind::kFrameDrop:
        if (AddrMatches(event.src_filter, src) &&
            AddrMatches(event.dst_filter, dst) && Fires(i, site, now, op)) {
          out.drop = true;
        }
        break;
      case FaultKind::kLinkDown:
        if (Armed(event, site, now, op)) {
          out.drop = true;
        }
        break;
      case FaultKind::kFrameDuplicate:
        if (AddrMatches(event.src_filter, src) &&
            AddrMatches(event.dst_filter, dst) && Fires(i, site, now, op)) {
          out.duplicates += event.param != 0 ? static_cast<uint32_t>(event.param) : 1;
        }
        break;
      case FaultKind::kFrameReorder:
      case FaultKind::kLatencySpike:
        if (AddrMatches(event.src_filter, src) &&
            AddrMatches(event.dst_filter, dst) && Fires(i, site, now, op)) {
          out.extra_latency += event.param;
        }
        break;
      default:
        break;
    }
  }
  if (out.drop) {
    ++stats_.frames_dropped;
    // A dropped frame is dropped; the other effects are moot.
    out.duplicates = 0;
    out.extra_latency = 0;
  } else {
    if (out.duplicates != 0) {
      stats_.frames_duplicated += out.duplicates;
    }
    if (out.extra_latency != 0) {
      ++stats_.frames_delayed;
    }
  }
  return out;
}

TransferFault FaultInjector::OnTransfer(const std::string& site, SimTime start,
                                        SimTime base_duration) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t op = BumpOp(site, OpClass::kTransfer);
  TransferFault out;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind == FaultKind::kLatencySpike && Fires(i, site, start, op)) {
      out.extra_latency += event.param;
    }
  }
  SimTime end = start + base_duration + out.extra_latency;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    switch (event.kind) {
      case FaultKind::kFrameDrop:
        if (Fires(i, site, start, op)) {
          out.lost = true;
        }
        break;
      case FaultKind::kLinkDown:
        // The outage intersects the transfer's time on the wire.
        if (op >= event.first_op && op <= event.last_op &&
            (event.site.empty() || event.site == site) &&
            start < event.until && end > event.from) {
          out.lost = true;
        }
        break;
      default:
        break;
    }
  }
  if (out.lost) {
    ++stats_.transfers_lost;
  } else if (out.extra_latency != 0) {
    ++stats_.transfers_delayed;
  }
  return out;
}

bool FaultInjector::LinkDown(const std::string& site, SimTime now) const {
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::kLinkDown &&
        (event.site.empty() || event.site == site) && now >= event.from &&
        now < event.until) {
      return true;
    }
  }
  return false;
}

Status FaultInjector::OnBlockRead(const std::string& site, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t op = BumpOp(site, OpClass::kBlockRead);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind == FaultKind::kReadError &&
        Fires(i, site, now, op)) {
      ++stats_.read_errors;
      return UnavailableError("injected read error at " + site + " (op " +
                              std::to_string(op) + ")");
    }
  }
  return OkStatus();
}

Status FaultInjector::OnBlockWrite(const std::string& site, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t op = BumpOp(site, OpClass::kBlockWrite);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind == FaultKind::kWriteError &&
        Fires(i, site, now, op)) {
      ++stats_.write_errors;
      return UnavailableError("injected write error at " + site + " (op " +
                              std::to_string(op) + ")");
    }
  }
  return OkStatus();
}

std::optional<uint64_t> FaultInjector::OnByteWrite(const std::string& site,
                                                   SimTime now, uint64_t offset,
                                                   uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t op = BumpOp(site, OpClass::kByteWrite);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].kind != FaultKind::kTornWrite ||
        !Fires(i, site, now, op)) {
      continue;
    }
    ++stats_.torn_writes;
    // Tear at a sector boundary strictly inside the write: the medium
    // persists whole sectors atomically, so the landed prefix covers the
    // sectors fully written before power failed (possibly none).
    uint64_t first_cut = (offset + kTearSector - 1) / kTearSector * kTearSector;
    std::vector<uint64_t> cuts;
    for (uint64_t cut = std::max(first_cut, offset); cut < offset + len;
         cut += kTearSector) {
      if (cut > offset) {
        cuts.push_back(cut - offset);
      }
    }
    cuts.push_back(0);  // "no sector completed" is always possible
    return cuts[streams_[i].NextBelow(cuts.size())];
  }
  return std::nullopt;
}

std::optional<SimTime> FaultInjector::PauseUntil(const std::string& site,
                                                 SimTime now) const {
  std::optional<SimTime> until;
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::kHostPause &&
        (event.site.empty() || event.site == site) && now >= event.from &&
        now < event.until) {
      until = std::max(until.value_or(0), event.until);
    }
  }
  return until;
}

bool FaultInjector::TakeCrash(const std::string& site, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind == FaultKind::kHostCrash && !consumed_[i] &&
        (event.site.empty() || event.site == site) && now >= event.from) {
      consumed_[i] = true;
      ++stats_.host_crashes;
      return true;
    }
  }
  return false;
}

}  // namespace hyperion::fault
