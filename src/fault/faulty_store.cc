#include "src/fault/faulty_store.h"

namespace hyperion::fault {

Status FaultyBlockStore::ReadSectors(uint64_t lba, uint32_t count,
                                     uint8_t* out) {
  HYP_RETURN_IF_ERROR(injector_->OnBlockRead(site_, now()));
  return inner_->ReadSectors(lba, count, out);
}

Status FaultyBlockStore::WriteSectors(uint64_t lba, uint32_t count,
                                      const uint8_t* data) {
  HYP_RETURN_IF_ERROR(injector_->OnBlockWrite(site_, now()));
  return inner_->WriteSectors(lba, count, data);
}

Status FaultyByteStore::ReadAt(uint64_t offset, void* out, size_t n) const {
  if (dead_) {
    return UnavailableError("byte store " + site_ + " is dead (torn write)");
  }
  return inner_->ReadAt(offset, out, n);
}

Status FaultyByteStore::WriteAt(uint64_t offset, const void* data, size_t n) {
  if (dead_) {
    return UnavailableError("byte store " + site_ + " is dead (torn write)");
  }
  std::optional<uint64_t> torn = injector_->OnByteWrite(site_, now(), offset, n);
  if (!torn.has_value()) {
    return inner_->WriteAt(offset, data, n);
  }
  if (*torn > 0) {
    HYP_RETURN_IF_ERROR(inner_->WriteAt(offset, data, *torn));
  }
  dead_ = true;
  return UnavailableError("torn write at " + site_ + ": " +
                          std::to_string(*torn) + " of " + std::to_string(n) +
                          " bytes persisted before power loss");
}

Status FaultyByteStore::Sync() {
  if (dead_) {
    return UnavailableError("byte store " + site_ + " is dead (torn write)");
  }
  return inner_->Sync();
}

}  // namespace hyperion::fault
