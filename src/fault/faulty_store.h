// Fault-injecting storage wrappers.
//
// FaultyBlockStore wraps any BlockStore and surfaces transient injected
// read/write errors (kUnavailable) to its consumer — the virtio and
// emulated block devices propagate them to the guest as I/O errors.
//
// FaultyByteStore wraps the ByteStore under an HVD image and models power
// loss mid-write: a kTornWrite event lands only a sector-aligned prefix of
// one WriteAt, then the device dies (every later operation fails). Tests
// reopen the surviving bytes to check crash consistency.

#ifndef SRC_FAULT_FAULTY_STORE_H_
#define SRC_FAULT_FAULTY_STORE_H_

#include <memory>
#include <string>
#include <utility>

#include "src/fault/fault.h"
#include "src/storage/block_store.h"
#include "src/storage/byte_store.h"
#include "src/util/sim_clock.h"

namespace hyperion::fault {

class FaultyBlockStore final : public storage::BlockStore {
 public:
  // `clock` may be null: time-windowed events then key off now == 0 and only
  // op-count windows select faults.
  FaultyBlockStore(std::shared_ptr<storage::BlockStore> inner,
                   FaultInjector* injector, std::string site,
                   SimClock* clock = nullptr)
      : inner_(std::move(inner)),
        injector_(injector),
        site_(std::move(site)),
        clock_(clock) {}

  uint64_t num_sectors() const override { return inner_->num_sectors(); }
  Status ReadSectors(uint64_t lba, uint32_t count, uint8_t* out) override;
  Status WriteSectors(uint64_t lba, uint32_t count,
                      const uint8_t* data) override;
  Status Flush() override { return inner_->Flush(); }

  storage::BlockStore* inner() { return inner_.get(); }

 private:
  SimTime now() const { return clock_ != nullptr ? clock_->now() : 0; }

  std::shared_ptr<storage::BlockStore> inner_;
  FaultInjector* injector_;
  std::string site_;
  SimClock* clock_;
};

class FaultyByteStore final : public storage::ByteStore {
 public:
  FaultyByteStore(std::unique_ptr<storage::ByteStore> inner,
                  FaultInjector* injector, std::string site,
                  SimClock* clock = nullptr)
      : inner_(std::move(inner)),
        injector_(injector),
        site_(std::move(site)),
        clock_(clock) {}

  uint64_t size() const override { return inner_->size(); }
  Status ReadAt(uint64_t offset, void* out, size_t n) const override;
  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status Sync() override;

  // True after a torn write killed the device.
  bool dead() const { return dead_; }
  // The surviving medium (what a post-crash reopen would see).
  storage::ByteStore* inner() { return inner_.get(); }

 private:
  SimTime now() const { return clock_ != nullptr ? clock_->now() : 0; }

  std::unique_ptr<storage::ByteStore> inner_;
  FaultInjector* injector_;
  std::string site_;
  SimClock* clock_;
  bool dead_ = false;
};

}  // namespace hyperion::fault

#endif  // SRC_FAULT_FAULTY_STORE_H_
