// Deterministic fault injection (DESIGN.md §7).
//
// A FaultPlan is a declarative schedule of fault events keyed to simulated
// time and/or per-site operation counts. A FaultInjector interprets the plan
// at runtime: instrumented sites (links, switches, stores, hosts) ask it
// "does a fault hit this operation?" and apply the answer locally. All
// probabilistic decisions draw from per-event xoshiro streams derived from
// the plan seed, so a given (plan, workload) pair replays bit-identically —
// faults are reproducible inputs, not flaky noise.
//
// Sites are free-form strings chosen by the integration point (e.g.
// "migrate:link", "vm1:disk"). An event with an empty site matches every
// site; an event with a site string matches only queries from that site.

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace hyperion::fault {

// "Forever" for event windows.
inline constexpr SimTime kNever = ~SimTime{0};
inline constexpr uint64_t kAnyOp = ~uint64_t{0};

// What goes wrong. Frame-level kinds apply to switch frame delivery;
// kFrameDrop/kLatencySpike/kLinkDown also apply to bulk transfers
// (migration chunks, demand-fetch pages) over a Link.
enum class FaultKind : uint8_t {
  kFrameDrop = 0,   // frame/transfer vanishes in flight
  kFrameDuplicate,  // frame delivered param+1 times (default 2)
  kFrameReorder,    // frame delayed by param cycles, overtaken by later traffic
  kLatencySpike,    // param extra cycles of one-off latency
  kLinkDown,        // link dead for the whole [from, until) window
  kReadError,       // block read fails with kUnavailable
  kWriteError,      // block write fails with kUnavailable
  kTornWrite,       // byte-store write applies a sector-aligned prefix, then
                    // the device dies (simulated power loss)
  kHostPause,       // host runs no vCPUs during [from, until) (SMI/stall)
  kHostCrash,       // every VM on the host crashes at `from` (one-shot)
};

std::string_view FaultKindName(FaultKind kind);

// Operation classes whose per-site counters drive op-keyed events.
enum class OpClass : uint8_t {
  kFrame = 0,   // one switch frame delivery attempt
  kTransfer,    // one bulk link transfer (migration chunk, page fetch)
  kBlockRead,   // one BlockStore::ReadSectors
  kBlockWrite,  // one BlockStore::WriteSectors
  kByteWrite,   // one ByteStore::WriteAt
};
inline constexpr size_t kNumOpClasses = 5;

// One scheduled fault. An event fires for an operation when every arming
// condition holds: the site matches, `now` falls in [from, until), the
// site's op counter falls in [first_op, last_op], address filters (frames
// only) match, and the per-event Bernoulli draw passes.
struct FaultEvent {
  std::string site;              // empty = any site
  FaultKind kind = FaultKind::kFrameDrop;
  SimTime from = 0;              // window start (inclusive)
  SimTime until = kNever;        // window end (exclusive)
  uint64_t first_op = 0;         // op-count window (inclusive both ends)
  uint64_t last_op = kAnyOp;
  double probability = 1.0;      // Bernoulli per matching operation
  uint64_t param = 0;            // kind-specific: extra latency, dup count
  // Frame address filters (empty = any). A partition is a pair of drop
  // events with src/dst filters for each direction.
  std::vector<uint32_t> src_filter;
  std::vector<uint32_t> dst_filter;
};

// Profile for FaultPlan::Random: which sites exist and how long the
// workload runs, so generated windows land somewhere interesting.
struct ChaosProfile {
  std::string link_site;          // bulk-transfer site (migration link)
  std::string host_site;          // optional: host pause windows
  SimTime horizon = kSimTicksPerSec;
  uint32_t max_events = 4;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultEvent> events;

  FaultEvent& Add(FaultEvent event) {
    events.push_back(std::move(event));
    return events.back();
  }

  // --- Convenience constructors for common shapes -------------------------
  void AddLinkDown(std::string site, SimTime from, SimTime until);
  void AddTransferLoss(std::string site, double probability, SimTime from = 0,
                       SimTime until = kNever);
  // Deterministically lose exactly the op_index-th transfer at `site`.
  void AddDropOnce(std::string site, uint64_t op_index);
  void AddLatencySpike(std::string site, SimTime extra, double probability,
                       SimTime from = 0, SimTime until = kNever);
  void AddReadError(std::string site, uint64_t first_op, uint64_t count = 1);
  void AddWriteError(std::string site, uint64_t first_op, uint64_t count = 1);
  // Tear the op_index-th byte-store write at `site` (then the device dies).
  void AddTornWrite(std::string site, uint64_t op_index);
  void AddHostPause(std::string site, SimTime from, SimTime until);
  void AddHostCrash(std::string site, SimTime at);
  // Bidirectional partition between address sets a and b during the window.
  void AddPartition(std::string site, std::vector<uint32_t> a,
                    std::vector<uint32_t> b, SimTime from, SimTime until);

  // A reproducible random plan for chaos testing: 1..max_events events drawn
  // from the taxonomy above, with windows inside [0, horizon). The same
  // (seed, profile) always yields the same plan.
  static FaultPlan Random(uint64_t seed, const ChaosProfile& profile);
};

// The answer to "does a fault hit this frame?".
struct FrameFault {
  bool drop = false;
  uint32_t duplicates = 0;     // extra copies to deliver
  SimTime extra_latency = 0;   // added to the delivery time
};

// The answer to "does a fault hit this bulk transfer?".
struct TransferFault {
  bool lost = false;
  SimTime extra_latency = 0;
};

// Interprets a FaultPlan. One injector instance may serve many sites; each
// query advances the per-site op counter for its class, and probabilistic
// events consume draws from their own rng stream, so queries from unrelated
// sites never perturb each other's outcomes.
//
// Thread safety: op-counter/stream/stats mutation is serialized by an
// internal mutex, so instrumented sites may query from concurrent vCPU
// slices (DESIGN.md §8). Determinism additionally requires that each *site*
// is queried from at most one slice per round — which holds by construction
// when sites are per-VM (disks) or barrier-scoped (hosts, migration links).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // --- Network ------------------------------------------------------------

  // One switch frame delivery from `src` to `dst`.
  FrameFault OnFrame(const std::string& site, SimTime now, uint32_t src,
                     uint32_t dst);

  // One bulk transfer occupying [start, start + base_duration). Link-down
  // windows intersecting the (possibly latency-extended) transfer lose it.
  TransferFault OnTransfer(const std::string& site, SimTime start,
                           SimTime base_duration);

  // True when a kLinkDown window covers `now`.
  bool LinkDown(const std::string& site, SimTime now) const;

  // --- Storage ------------------------------------------------------------

  Status OnBlockRead(const std::string& site, SimTime now);
  Status OnBlockWrite(const std::string& site, SimTime now);

  // One ByteStore::WriteAt of `len` bytes at `offset`. Returns the number of
  // bytes that actually reach the medium when the write tears (a
  // sector-aligned prefix, possibly zero), or nullopt for a clean write.
  std::optional<uint64_t> OnByteWrite(const std::string& site, SimTime now,
                                      uint64_t offset, uint64_t len);

  // --- Host ---------------------------------------------------------------

  // When `now` falls in a kHostPause window, the exclusive end of the
  // latest such window; nullopt otherwise.
  std::optional<SimTime> PauseUntil(const std::string& site, SimTime now) const;

  // True once per kHostCrash event whose trigger time has passed (the event
  // is consumed; later queries return false).
  bool TakeCrash(const std::string& site, SimTime now);

  // --- Introspection ------------------------------------------------------

  struct Stats {
    uint64_t frames_dropped = 0;
    uint64_t frames_duplicated = 0;
    uint64_t frames_delayed = 0;
    uint64_t transfers_lost = 0;
    uint64_t transfers_delayed = 0;
    uint64_t read_errors = 0;
    uint64_t write_errors = 0;
    uint64_t torn_writes = 0;
    uint64_t host_crashes = 0;
  };
  // Deliberately lockless: read for reporting after the run quiesces, when
  // no instrumented site can be mid-query.
  const Stats& stats() const HYP_NO_THREAD_SAFETY_ANALYSIS { return stats_; }

  uint64_t OpCount(const std::string& site, OpClass cls) const;

 private:
  // Non-probabilistic arming check (site/time/op window/filters).
  bool Armed(const FaultEvent& event, const std::string& site, SimTime now,
             uint64_t op) const;
  // Armed + Bernoulli draw from the event's stream.
  bool Fires(size_t event_index, const std::string& site, SimTime now,
             uint64_t op) HYP_REQUIRES(mu_);
  uint64_t BumpOp(const std::string& site, OpClass cls) HYP_REQUIRES(mu_);

  mutable std::mutex mu_;
  FaultPlan plan_;
  // one per event, seeded from plan.seed
  std::vector<Xoshiro256> streams_ HYP_GUARDED_BY(mu_);
  // one-shot events (kHostCrash)
  std::vector<bool> consumed_ HYP_GUARDED_BY(mu_);
  std::map<std::pair<std::string, uint8_t>, uint64_t> op_counts_ HYP_GUARDED_BY(mu_);
  Stats stats_ HYP_GUARDED_BY(mu_);
};

}  // namespace hyperion::fault

#endif  // SRC_FAULT_FAULT_H_
