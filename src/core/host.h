// The physical host: frames, clock, switch, scheduler, and the run loop
// that time-slices vCPUs over simulated pCPUs.

#ifndef SRC_CORE_HOST_H_
#define SRC_CORE_HOST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/vm.h"
#include "src/mem/frame_pool.h"
#include "src/net/network.h"
#include "src/sched/scheduler.h"
#include "src/util/cost_model.h"
#include "src/util/sim_clock.h"

namespace hyperion::fault {
class FaultInjector;
}  // namespace hyperion::fault

namespace hyperion::core {

struct HostConfig {
  std::string name = "host";
  uint32_t num_pcpus = 4;
  uint64_t ram_bytes = 256u << 20;  // host physical memory
  sched::SchedPolicy sched_policy = sched::SchedPolicy::kCredit;
  uint64_t timeslice_cycles = 1'000'000;  // 1 ms
  CostModel costs;
};

class Host {
 public:
  explicit Host(HostConfig config = HostConfig{});
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const HostConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  mem::FramePool& pool() { return pool_; }
  net::VirtualSwitch& vswitch() { return switch_; }
  sched::Scheduler& scheduler() { return *sched_; }
  const CostModel& costs() const { return config_.costs; }

  // --- VM management -----------------------------------------------------

  Result<Vm*> CreateVm(VmConfig config);
  Status DestroyVm(Vm* vm);
  Vm* FindVm(const std::string& name);
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  // --- Run loop ------------------------------------------------------------

  // Advances simulated time by `duration`, scheduling vCPUs and firing
  // device events.
  void RunFor(SimTime duration);

  // Runs until every VM is halted/crashed/paused and no events are pending,
  // or until `max_time` is reached. Returns true when quiescent.
  bool RunUntilQuiescent(SimTime max_time);

  // Convenience: run until `vm` leaves the running state (or max_time).
  bool RunUntilVmStops(Vm* vm, SimTime max_time);

  // --- Hooks used by Vm --------------------------------------------------

  // Marks a vCPU runnable (device interrupt, page arrival, resume).
  void WakeVcpu(Vm* vm, uint32_t vcpu);
  // Marks a vCPU not runnable (WFI, stall, halt).
  void BlockVcpu(Vm* vm, uint32_t vcpu);

  // --- Fault injection -----------------------------------------------------

  // Subjects this host to the injector's kHostPause/kHostCrash events under
  // `site`. During a pause window the run loop schedules no vCPU slices —
  // simulated time and device events still advance (an SMI-style stall). A
  // crash event crashes every running VM once. Pass nullptr to detach.
  void SetFaultInjector(fault::FaultInjector* injector, std::string site);

  // Audits FramePool refcounts against every VM's page mappings (KSM share
  // accounting; see src/verify/audit.h). Called automatically after each
  // slice when HYPERION_AUDIT is on — a violation crashes every running VM —
  // and directly by tests.
  verify::AuditReport AuditFrameAccounting() const;

  struct HostStats {
    uint64_t slices = 0;
    uint64_t idle_picks = 0;
    uint64_t cycles_executed = 0;
    uint64_t context_switches = 0;
    SimTime fault_pause_time = 0;  // time spent inside injected pause windows
  };
  const HostStats& stats() const { return stats_; }

 private:
  friend class Vm;

  struct EntityRef {
    Vm* vm;
    uint32_t vcpu;
  };

  sched::EntityId EntityOf(Vm* vm, uint32_t vcpu) const;
  void StepOnce(SimTime end);

  HostConfig config_;
  SimClock clock_;
  mem::FramePool pool_;
  net::VirtualSwitch switch_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::vector<std::unique_ptr<Vm>> vms_;

  std::map<sched::EntityId, EntityRef> entities_;
  std::map<const Vm*, sched::EntityId> vm_base_entity_;
  sched::EntityId next_entity_ = 1;

  std::vector<SimTime> pcpu_free_at_;
  std::vector<sched::EntityId> pcpu_last_entity_;
  fault::FaultInjector* fault_injector_ = nullptr;
  std::string fault_site_;
  HostStats stats_;
};

}  // namespace hyperion::core

#endif  // SRC_CORE_HOST_H_
