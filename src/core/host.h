// The physical host: frames, switch, scheduler, and the per-host half of the
// run loop that time-slices vCPUs over simulated pCPUs.
//
// The run loop is a staged dispatch→execute→commit pipeline (DESIGN.md §8):
// each round dispatches up to num_pcpus slices whose start times fall before
// the next pending clock event, executes them concurrently on a worker pool
// with every cross-VM side effect staged per slice, and commits the staged
// effects at a barrier in dispatch order. The committed state is
// bit-identical for any worker count, including zero.
//
// Simulated time lives in a TimeDomain (src/core/time_domain.h), which also
// orchestrates the rounds: a standalone Host owns a degenerate domain of
// one, while clustered hosts share their Cluster's domain and step in
// lockstep. Host contributes the per-member pieces — fault gate, dispatch,
// slice execution, commit, idle parking — to the domain's round.

#ifndef SRC_CORE_HOST_H_
#define SRC_CORE_HOST_H_

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/core/time_domain.h"
#include "src/core/vm.h"
#include "src/core/worker_pool.h"
#include "src/mem/frame_pool.h"
#include "src/net/network.h"
#include "src/sched/scheduler.h"
#include "src/util/cost_model.h"
#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion::fault {
class FaultInjector;
}  // namespace hyperion::fault

namespace hyperion::core {

struct HostConfig {
  std::string name = "host";
  uint32_t num_pcpus = 4;
  uint64_t ram_bytes = 256u << 20;  // host physical memory
  sched::SchedPolicy sched_policy = sched::SchedPolicy::kCredit;
  uint64_t timeslice_cycles = 1'000'000;  // 1 ms
  CostModel costs;
  // Worker threads for the staged execution core. 0 runs every lane on the
  // host thread; N spawns a persistent pool of N threads (the host thread
  // participates too). -1 reads HYPERION_WORKERS at construction (default
  // 0). Simulation results are identical for every setting.
  int worker_threads = -1;

  // Returns a default config with every HYPERION_* environment override
  // already resolved (currently just HYPERION_WORKERS). The only getenv
  // calls in the core live in its implementation, so the rest of the run
  // loop needs no concurrency-mt-unsafe carve-out.
  static HostConfig FromEnv();
};

class Host {
 public:
  // Standalone: the host owns a degenerate TimeDomain of one.
  explicit Host(HostConfig config = HostConfig{});
  // Clustered: the host joins `domain` (borrowed; must outlive the host) and
  // shares its clock, event horizon, and worker pool with the other members.
  Host(HostConfig config, TimeDomain* domain);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const HostConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  TimeDomain& domain() { return *domain_; }
  SimClock& clock() { return domain_->clock(); }
  const SimClock& clock() const { return domain_->clock(); }
  mem::FramePool& pool() { return pool_; }
  net::VirtualSwitch& vswitch() { return switch_; }
  sched::Scheduler& scheduler() { return *sched_; }
  const CostModel& costs() const { return config_.costs; }
  uint32_t worker_threads() const { return domain_->worker_threads(); }

  // --- VM management -----------------------------------------------------

  Result<Vm*> CreateVm(VmConfig config);
  Status DestroyVm(Vm* vm);
  Vm* FindVm(const std::string& name);
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  // --- Run loop ------------------------------------------------------------

  // Advances simulated time by `duration`, scheduling vCPUs and firing
  // device events. In a shared domain this advances every member host — time
  // is one fabric-wide quantity.
  void RunFor(SimTime duration);

  // Runs until every VM is halted/crashed/paused and no events are pending,
  // or until `max_time` is reached. Returns true when quiescent.
  bool RunUntilQuiescent(SimTime max_time);

  // Convenience: run until `vm` leaves the running state (or max_time).
  bool RunUntilVmStops(Vm* vm, SimTime max_time);

  // True when some vCPU on this host is schedulable right now (its VM
  // running, not halted, not waiting). Cluster-level quiescence checks poll
  // this across members.
  bool AnyVcpuRunnable() const;

  // --- Hooks used by Vm --------------------------------------------------

  // Marks a vCPU runnable (device interrupt, page arrival, resume). Staged
  // when called from inside an executing slice; the phase token is the
  // static evidence the caller is in a legal regime for the route taken.
  void WakeVcpu(const Phase& ph, Vm* vm, uint32_t vcpu);
  // Marks a vCPU not runnable (WFI, stall, halt).
  void BlockVcpu(const Phase& ph, Vm* vm, uint32_t vcpu);

  // --- Fault injection -----------------------------------------------------

  // Subjects this host to the injector's kHostPause/kHostCrash events under
  // `site`. During a pause window the run loop schedules no vCPU slices —
  // simulated time and device events still advance (an SMI-style stall). A
  // crash event crashes every running VM once. Pass nullptr to detach.
  void SetFaultInjector(fault::FaultInjector* injector, std::string site);

  // Sticky: set by an injected kHostCrash. The cluster orchestrator reads it
  // to trigger evacuation and exclude the host from placement; standalone
  // hosts keep running (their VMs were crashed once). MarkRepaired re-admits
  // the host after simulated maintenance.
  bool failed() const { return failed_; }
  void MarkRepaired() { failed_ = false; }

  // Audits FramePool refcounts against every VM's page mappings (KSM share
  // accounting; see src/verify/audit.h). Called automatically at each round
  // barrier when HYPERION_AUDIT is on — a violation crashes every running VM
  // — and directly by tests.
  verify::AuditReport AuditFrameAccounting() const;

  // Per-pCPU time accounting — the DRS load signal, and useful standalone.
  // busy is guest cycles committed on the pCPU; steal is VMM overhead
  // charged against the guest (world-switch cost on vCPU changes); idle is
  // parked time with nothing runnable. All three are committed at the round
  // barrier, so they are bit-identical at any worker count.
  struct PcpuStats {
    uint64_t busy_cycles = 0;
    uint64_t steal_cycles = 0;
    SimTime idle_time = 0;
    bool operator==(const PcpuStats&) const = default;
  };

  struct HostStats {
    uint64_t slices = 0;
    uint64_t idle_picks = 0;
    uint64_t cycles_executed = 0;
    uint64_t context_switches = 0;
    uint64_t rounds = 0;           // dispatch→execute→commit rounds
    SimTime fault_pause_time = 0;  // time spent inside injected pause windows
    std::vector<PcpuStats> pcpu;   // sized num_pcpus at construction
    bool operator==(const HostStats&) const = default;
  };
  const HostStats& stats() const { return stats_; }

 private:
  friend class Vm;
  friend class TimeDomain;

  struct EntityRef {
    Vm* vm = nullptr;
    uint32_t vcpu = 0;
  };

  // A deferred scheduler wake/block captured during slice execution.
  struct WakeOp {
    Vm* vm;
    uint32_t vcpu;
    bool runnable;
  };

  // One dispatched slice plus every side effect it staged while executing.
  struct SliceWork {
    Host* host = nullptr;
    uint32_t pcpu = 0;
    SimTime start = 0;
    sched::EntityId id = sched::kIdle;
    EntityRef ref;
    uint64_t budget = 0;
    SliceResult result;
    SimClock::Stage clock_stage;
    net::VirtualSwitch::TxStage tx_stage;
    mem::FramePool::Stage pool_stage;
    std::vector<WakeOp> wakes;
    std::string log;
  };

  // A pCPU that found nothing runnable at `start` and parks until `park`.
  struct IdlePick {
    uint32_t pcpu;
    SimTime start;
    SimTime park;
  };

  // This host's contribution to one domain round: the dispatched slices and
  // idle picks, plus the commit-time bounds the idle-parking clamp needs.
  struct RoundPlan {
    std::vector<SliceWork> slices;
    std::vector<IdlePick> idles;
    bool vetoed = false;                      // lost a store-sharing veto
    SimTime min_done = ~SimTime{0};           // earliest slice completion
    SimTime wake_horizon = ~SimTime{0};       // earliest committed wake
  };

  sched::EntityId EntityOf(Vm* vm, uint32_t vcpu) const;

  // --- Per-member round pieces, called by TimeDomain::RunRound -------------

  // Consumes injected host crash / pause events at the round's start;
  // updates paused_until_ and the pause-time accounting (clamped to `end`).
  void FaultGate(SimTime end);
  // Earliest time this host could dispatch a slice: its earliest-free pCPU,
  // or the end of an active pause window.
  SimTime DispatchAnchor() const;
  // Dispatches slices/idle picks into `plan` up to `window_end` (budgets run
  // to `end`). `store_users` is the round-wide shared-BlockStore veto map —
  // domain-wide, since a store can span hosts mid-migration.
  void DispatchRound(SimTime window_end, SimTime end,
                     std::map<const void*, const Vm*>& store_users, RoundPlan& plan);
  // Merges every staged effect of `plan`'s slices at the barrier, in
  // dispatch order; fills plan.min_done / plan.wake_horizon.
  void CommitSlices(const CommitPhase& commit, RoundPlan& plan);
  // Parks idle pCPUs; a vetoed host's park is clamped by the domain-wide
  // earliest slice completion (the conflicting slice may be on another
  // host), and every park by the next pending clock event as of the barrier
  // (a commit-scheduled delivery may wake a vCPU here long before the
  // dispatch-time window suggested).
  void ParkIdles(const RoundPlan& plan, SimTime domain_min_done, SimTime event_horizon);

  // Mints an ExecutePhase, installs the thread-local stages, runs the
  // slice, clears the stages.
  void ExecuteSlice(SliceWork& work);
  void CrashAllVms(const Status& reason);

  // Set while this thread executes a slice for this host; WakeVcpu/BlockVcpu
  // append to its wake list instead of touching the scheduler.
  static inline thread_local SliceWork* tls_slice_ = nullptr;

  HostConfig config_;
  // The host thread's serial-phase capability, handed to everything the host
  // does between rounds (VM setup/teardown, crash handling). Host is a
  // friend of SerialPhase; nothing on a worker lane can reach this member.
  SerialPhase serial_;
  // pool_ before owned_domain_: a standalone host's pending clock events can
  // hold frames whose refcounted payloads (net::FrameBuf) release into the
  // pool, so the owned domain's event queue must be torn down while the pool
  // is still alive. (Clustered hosts borrow their domain; the Cluster clears
  // the shared queue before tearing members down.)
  mem::FramePool pool_;
  std::unique_ptr<TimeDomain> owned_domain_;  // standalone only
  TimeDomain* domain_;                        // owned or borrowed
  net::VirtualSwitch switch_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::vector<std::unique_ptr<Vm>> vms_;

  std::map<sched::EntityId, EntityRef> entities_;
  std::map<const Vm*, sched::EntityId> vm_base_entity_;
  sched::EntityId next_entity_ = 1;

  std::vector<SimTime> pcpu_free_at_;
  std::vector<sched::EntityId> pcpu_last_entity_;
  // Min-heap over (free_at, pcpu index): dispatch pops pCPUs in deterministic
  // earliest-free order without the former O(P) scan. Every pCPU is in the
  // heap exactly once; pops during dispatch are matched by pushes at commit.
  using PcpuHeap =
      std::priority_queue<std::pair<SimTime, uint32_t>,
                          std::vector<std::pair<SimTime, uint32_t>>, std::greater<>>;
  PcpuHeap pcpu_heap_;

  fault::FaultInjector* fault_injector_ = nullptr;
  std::string fault_site_;
  // Active injected pause window: no dispatch while now < paused_until_.
  // Refreshed by FaultGate each round; accounting is incremental against
  // pause_accounted_until_ because the shared clock may advance less than
  // the window per round (other members still run).
  SimTime paused_until_ = 0;
  SimTime pause_accounted_until_ = 0;
  bool failed_ = false;
  HostStats stats_;
};

}  // namespace hyperion::core

#endif  // SRC_CORE_HOST_H_
