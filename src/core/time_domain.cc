#include "src/core/time_domain.h"

#include <algorithm>
#include <map>

#include "src/core/host.h"

namespace hyperion::core {

namespace {

uint32_t ResolveWorkerThreads(int configured) {
  if (configured >= 0) {
    return static_cast<uint32_t>(configured);
  }
  int from_env = HostConfig::FromEnv().worker_threads;
  return from_env > 0 ? static_cast<uint32_t>(from_env) : 0;
}

}  // namespace

TimeDomain::TimeDomain(int worker_threads)
    : worker_threads_(ResolveWorkerThreads(worker_threads)) {}

TimeDomain::~TimeDomain() = default;

void TimeDomain::AddMember(Host* host) { members_.push_back(host); }

void TimeDomain::RemoveMember(Host* host) {
  members_.erase(std::remove(members_.begin(), members_.end(), host), members_.end());
}

void TimeDomain::RunFor(SimTime duration) {
  SimTime end = clock_.now() + duration;
  if (workers_ == nullptr && worker_threads_ > 0) {
    workers_ = std::make_unique<WorkerPool>(worker_threads_);
  }
  while (clock_.now() < end) {
    if (!RunRound(end)) {
      return;
    }
  }
}

bool TimeDomain::RunRound(SimTime end) {
  // Fault gates first: injected crashes and pause windows are consumed at
  // the round's start, exactly where the old single-host loop checked them.
  for (Host* h : members_) {
    h->FaultGate(end);
  }

  // The earliest member anchor opens the round; everything due on the way
  // fires with the domain's serial token.
  SimTime t0 = ~SimTime{0};
  for (Host* h : members_) {
    t0 = std::min(t0, h->DispatchAnchor());
  }
  t0 = std::max(t0, clock_.now());
  if (t0 >= end) {
    clock_.RunUntil(serial_, end);
    return false;
  }
  clock_.RunUntil(serial_, t0);

  // Conservative window: no slice may start at or after the next pending
  // clock event — that event could wake a vCPU that deserves a pCPU first.
  // The horizon is shared: any member's event bounds every member's round.
  SimTime window_end = end;
  if (clock_.HasPending()) {
    window_end = std::min(window_end, clock_.NextEventTime());
  }

  // --- Dispatch: per member, in member order -------------------------------
  std::map<const void*, const Vm*> store_users;
  std::vector<Host::RoundPlan> plans(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    members_[i]->DispatchRound(window_end, end, store_users, plans[i]);
  }

  // --- Execute -------------------------------------------------------------
  // Same-VM slices form one lane, run sequentially in dispatch order (guest
  // state is never touched by two threads at once — their simulated slices
  // still overlap in time, as on real SMP). Distinct lanes run concurrently
  // on the shared pool; a VM never spans hosts, so lanes don't either.
  std::vector<std::vector<Host::SliceWork*>> lanes;
  {
    std::map<const Vm*, size_t> lane_of;
    for (Host::RoundPlan& plan : plans) {
      for (Host::SliceWork& work : plan.slices) {
        auto [it, inserted] = lane_of.try_emplace(work.ref.vm, lanes.size());
        if (inserted) {
          lanes.emplace_back();
        }
        lanes[it->second].push_back(&work);
      }
    }
  }
  auto run_lane = [&](size_t lane) {
    for (Host::SliceWork* work : lanes[lane]) {
      work->host->ExecuteSlice(*work);
    }
  };
  if (workers_ == nullptr || lanes.size() <= 1) {
    for (size_t lane = 0; lane < lanes.size(); ++lane) {
      run_lane(lane);
    }
  } else {
    workers_->Run(lanes.size(), run_lane);
  }

  // --- Commit --------------------------------------------------------------
  // Member order, each member's slices in dispatch order: one deterministic
  // total order over every staged effect in the domain. The CommitPhase
  // minted here is the only way to reach the CommitStage entry points.
  CommitPhase commit;
  SimTime domain_min_done = ~SimTime{0};
  for (size_t i = 0; i < members_.size(); ++i) {
    members_[i]->CommitSlices(commit, plans[i]);
    domain_min_done = std::min(domain_min_done, plans[i].min_done);
  }
  // Post-commit event horizon: commits above may have scheduled deliveries
  // (frames crossing switches or the fabric) due before the dispatch-time
  // window; no idle pCPU may park past them.
  SimTime event_horizon = ~SimTime{0};
  if (clock_.HasPending()) {
    event_horizon = clock_.NextEventTime();
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    members_[i]->ParkIdles(plans[i], domain_min_done, event_horizon);
  }
  return true;
}

}  // namespace hyperion::core
