// A shared simulated-time domain: one SimClock, one event horizon, one
// worker pool, and N member hosts stepped in lockstep.
//
// PR 5 built the staged dispatch→execute→commit round loop inside Host; this
// refactor lifts the round orchestration here so several hosts can share a
// single time domain (a cluster). Each round:
//
//   1. runs every member's fault gate (injected host crash / pause windows),
//   2. anchors at the earliest dispatch time across members and advances the
//      shared clock there, firing due events,
//   3. lets each member dispatch slices against the shared event horizon
//      (the store-veto map spans members, since a BlockStore can be shared
//      across hosts mid-migration),
//   4. executes all members' lanes on one worker pool (a lane never crosses
//      VMs, and a VM never spans hosts),
//   5. commits staged effects in member order, each member's slices in
//      dispatch order — so results stay bit-identical at any worker count.
//
// A standalone Host owns a degenerate TimeDomain of one; a Cluster owns one
// domain for all its members. Either way the run loop is this one code path.

#ifndef SRC_CORE_TIME_DOMAIN_H_
#define SRC_CORE_TIME_DOMAIN_H_

#include <memory>
#include <vector>

#include "src/core/worker_pool.h"
#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion::core {

class Host;

class TimeDomain {
 public:
  // worker_threads: 0 runs every lane on the calling thread; N spawns a
  // persistent pool of N threads; -1 reads HYPERION_WORKERS (default 0).
  // Simulation results are identical for every setting.
  explicit TimeDomain(int worker_threads = -1);
  ~TimeDomain();

  TimeDomain(const TimeDomain&) = delete;
  TimeDomain& operator=(const TimeDomain&) = delete;

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  uint32_t worker_threads() const { return worker_threads_; }
  const std::vector<Host*>& members() const { return members_; }

  // Advances the domain by `duration`, stepping every member host's rounds
  // against the shared event horizon.
  void RunFor(SimTime duration);

  // Drops every pending event without running it; returns how many. Only
  // for teardown, before member hosts (whose pools back event-held frame
  // payloads) are destroyed. See SimClock::DiscardPending.
  size_t DiscardPendingEvents() { return clock_.DiscardPending(serial_); }

 private:
  friend class Host;

  void AddMember(Host* host);
  void RemoveMember(Host* host);

  // Runs one lockstep dispatch→execute→commit round toward `end`. Returns
  // false when nothing can happen before `end` (time has been advanced
  // there). Mints the round's CommitPhase for the barrier merge.
  bool RunRound(SimTime end);

  // The domain thread's serial-phase capability, handed to everything the
  // round loop does between rounds (clock pumping, fault gates, teardown).
  SerialPhase serial_;
  SimClock clock_;
  std::vector<Host*> members_;
  uint32_t worker_threads_ = 0;
  std::unique_ptr<WorkerPool> workers_;  // created on first parallel round
};

}  // namespace hyperion::core

#endif  // SRC_CORE_TIME_DOMAIN_H_
