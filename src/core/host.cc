#include "src/core/host.h"

#include <algorithm>

#include "src/fault/fault.h"
#include "src/util/logging.h"

namespace hyperion::core {

Host::Host(HostConfig config)
    : config_(std::move(config)),
      pool_(config_.ram_bytes / isa::kPageSize),
      switch_(&clock_),
      sched_(sched::MakeScheduler(config_.sched_policy, config_.num_pcpus)),
      pcpu_free_at_(config_.num_pcpus, 0),
      pcpu_last_entity_(config_.num_pcpus, sched::kIdle) {}

Host::~Host() = default;

Result<Vm*> Host::CreateVm(VmConfig vm_config) {
  for (const auto& vm : vms_) {
    if (vm->name() == vm_config.name) {
      return AlreadyExistsError("vm name already in use: " + vm_config.name);
    }
  }
  auto vm = std::unique_ptr<Vm>(new Vm(this, std::move(vm_config)));
  HYP_RETURN_IF_ERROR(vm->Init());

  sched::EntityId base = next_entity_;
  next_entity_ += vm->num_vcpus();
  vm_base_entity_[vm.get()] = base;
  for (uint32_t i = 0; i < vm->num_vcpus(); ++i) {
    HYP_RETURN_IF_ERROR(sched_->AddEntity(base + i, vm->config().sched));
    entities_[base + i] = EntityRef{vm.get(), i};
    sched_->SetRunnable(base + i, true, clock_.now());
  }
  vms_.push_back(std::move(vm));
  return vms_.back().get();
}

Status Host::DestroyVm(Vm* vm) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [vm](const std::unique_ptr<Vm>& p) { return p.get() == vm; });
  if (it == vms_.end()) {
    return NotFoundError("vm is not on this host");
  }
  sched::EntityId base = vm_base_entity_[vm];
  for (uint32_t i = 0; i < vm->num_vcpus(); ++i) {
    (void)sched_->RemoveEntity(base + i);
    entities_.erase(base + i);
  }
  vm_base_entity_.erase(vm);
  vms_.erase(it);
  return OkStatus();
}

Vm* Host::FindVm(const std::string& name) {
  for (const auto& vm : vms_) {
    if (vm->name() == name) {
      return vm.get();
    }
  }
  return nullptr;
}

sched::EntityId Host::EntityOf(Vm* vm, uint32_t vcpu) const {
  auto it = vm_base_entity_.find(vm);
  return it == vm_base_entity_.end() ? sched::kIdle : it->second + vcpu;
}

void Host::WakeVcpu(Vm* vm, uint32_t vcpu) {
  sched::EntityId id = EntityOf(vm, vcpu);
  if (id != sched::kIdle) {
    vm->vcpu(vcpu).state.waiting = false;
    sched_->SetRunnable(id, true, clock_.now());
  }
}

void Host::BlockVcpu(Vm* vm, uint32_t vcpu) {
  sched::EntityId id = EntityOf(vm, vcpu);
  if (id != sched::kIdle) {
    sched_->SetRunnable(id, false, clock_.now());
  }
}

void Host::SetFaultInjector(fault::FaultInjector* injector, std::string site) {
  fault_injector_ = injector;
  fault_site_ = std::move(site);
}

void Host::RunFor(SimTime duration) {
  SimTime end = clock_.now() + duration;
  while (clock_.now() < end) {
    if (fault_injector_ != nullptr) {
      if (fault_injector_->TakeCrash(fault_site_, clock_.now())) {
        Status reason = UnavailableError("injected host crash on " + config_.name);
        for (auto& vm : vms_) {
          if (vm->state() == VmState::kRunning) {
            vm->Crash(reason);
          }
        }
      }
      if (auto until = fault_injector_->PauseUntil(fault_site_, clock_.now())) {
        // The host is stalled: no vCPU runs, but time and device events
        // still advance to the window's end (or `end`, whichever first).
        SimTime stop = std::min(*until, end);
        if (stop > clock_.now()) {
          stats_.fault_pause_time += stop - clock_.now();
          clock_.RunUntil(stop);
          continue;
        }
      }
    }
    // Pick the pCPU that frees first.
    size_t p = 0;
    for (size_t i = 1; i < pcpu_free_at_.size(); ++i) {
      if (pcpu_free_at_[i] < pcpu_free_at_[p]) {
        p = i;
      }
    }
    SimTime t = std::max(pcpu_free_at_[p], clock_.now());
    if (t >= end) {
      clock_.RunUntil(end);
      return;
    }
    clock_.RunUntil(t);  // deliver device completions and timer wakes due by t

    sched::EntityId id = sched_->PickNext(clock_.now());
    if (id == sched::kIdle) {
      ++stats_.idle_picks;
      // Nothing runnable now: advance this pCPU to the next interesting
      // moment — the next clock event, another pCPU freeing, or `end`.
      SimTime next = end;
      if (clock_.HasPending()) {
        next = std::min(next, clock_.NextEventTime());
      }
      for (size_t i = 0; i < pcpu_free_at_.size(); ++i) {
        if (i != p && pcpu_free_at_[i] > t) {
          next = std::min(next, pcpu_free_at_[i]);
        }
      }
      next = std::min(next, sched_->NextEligibleTime(t));
      if (next <= t) {
        // Fully idle with no future events: nothing can happen before `end`.
        clock_.RunUntil(end);
        return;
      }
      pcpu_free_at_[p] = next;
      continue;
    }

    EntityRef ref = entities_[id];
    uint64_t budget = std::min<uint64_t>(config_.timeslice_cycles, end - t);
    SliceResult r = ref.vm->RunVcpuSlice(ref.vcpu, budget, t);
    if (verify::AuditEnabled()) {
      verify::AuditReport fr = AuditFrameAccounting();
      if (!fr.ok()) {
        Status reason = InternalError("frame accounting audit failed on " +
                                      config_.name + ":\n" + fr.ToString());
        for (auto& vm : vms_) {
          if (vm->state() == VmState::kRunning) {
            vm->Crash(reason);
          }
        }
      }
    }
    SimTime done = t + std::max<uint64_t>(r.cycles, 1);
    // Switching the pCPU to a different vCPU costs a world switch plus the
    // cold-cache tail; consolidation efficiency decays slightly with it.
    if (pcpu_last_entity_[p] != id) {
      done += config_.costs.context_switch;
      pcpu_last_entity_[p] = id;
      ++stats_.context_switches;
    }
    pcpu_free_at_[p] = done;
    ++stats_.slices;
    stats_.cycles_executed += r.cycles;

    bool still_runnable = r.end == SliceEnd::kBudget || r.end == SliceEnd::kYielded;
    sched_->Account(id, r.cycles, still_runnable, done);
  }
}

bool Host::RunUntilQuiescent(SimTime max_time) {
  while (clock_.now() < max_time) {
    SimTime before = clock_.now();
    RunFor(std::min<SimTime>(max_time - clock_.now(), 50 * kSimTicksPerMs));
    // Quiescent when the run loop made no scheduling progress and nothing is
    // pending.
    bool any_runnable = false;
    for (const auto& [id, ref] : entities_) {
      (void)id;
      const cpu::CpuState& s = ref.vm->vcpu(ref.vcpu).state;
      if (ref.vm->state() == VmState::kRunning && !s.halted && !s.waiting) {
        any_runnable = true;
        break;
      }
    }
    if (!any_runnable && !clock_.HasPending()) {
      return true;
    }
    if (clock_.now() == before) {
      return false;  // no progress possible
    }
  }
  return false;
}

verify::AuditReport Host::AuditFrameAccounting() const {
  verify::AuditReport report;
  std::vector<const mem::GuestMemory*> spaces;
  spaces.reserve(vms_.size());
  for (const auto& vm : vms_) {
    spaces.push_back(&vm->memory());
  }
  verify::AuditFrameAccounting(pool_, spaces, &report);
  return report;
}

bool Host::RunUntilVmStops(Vm* vm, SimTime max_time) {
  while (clock_.now() < max_time && vm->state() == VmState::kRunning) {
    RunFor(std::min<SimTime>(max_time - clock_.now(), 10 * kSimTicksPerMs));
  }
  return vm->state() != VmState::kRunning;
}

}  // namespace hyperion::core
