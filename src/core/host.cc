#include "src/core/host.h"

#include <algorithm>
#include <cstdlib>

#include "src/fault/fault.h"
#include "src/util/logging.h"

namespace hyperion::core {

HostConfig HostConfig::FromEnv() {
  HostConfig config;
  config.worker_threads = 0;
  // The process environment is read-only for the whole run; this is the one
  // place the core consults it.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("HYPERION_WORKERS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) {
      config.worker_threads = parsed;
    }
  }
  return config;
}

Host::Host(HostConfig config) : Host(std::move(config), nullptr) {}

Host::Host(HostConfig config, TimeDomain* domain)
    : config_(std::move(config)),
      pool_(config_.ram_bytes / isa::kPageSize),
      owned_domain_(domain == nullptr
                        ? std::make_unique<TimeDomain>(config_.worker_threads)
                        : nullptr),
      domain_(domain == nullptr ? owned_domain_.get() : domain),
      switch_(&domain_->clock()),
      sched_(sched::MakeScheduler(config_.sched_policy, config_.num_pcpus)),
      pcpu_free_at_(config_.num_pcpus, 0),
      pcpu_last_entity_(config_.num_pcpus, sched::kIdle) {
  stats_.pcpu.resize(config_.num_pcpus);
  for (uint32_t p = 0; p < config_.num_pcpus; ++p) {
    pcpu_heap_.push({0, p});
  }
  domain_->AddMember(this);
}

Host::~Host() {
  // Unlink from the domain before members die: a clustered domain outlives
  // this host and must not step it again. VM teardown below (vms_ member
  // destruction) still needs the domain clock, which outlives this call
  // either way (owned_domain_ is destroyed after vms_).
  domain_->RemoveMember(this);
}

Result<Vm*> Host::CreateVm(VmConfig vm_config) {
  for (const auto& vm : vms_) {
    if (vm->name() == vm_config.name) {
      return AlreadyExistsError("vm name already in use: " + vm_config.name);
    }
  }
  auto vm = std::unique_ptr<Vm>(new Vm(this, std::move(vm_config)));
  HYP_RETURN_IF_ERROR(vm->Init(serial_));

  sched::EntityId base = next_entity_;
  next_entity_ += vm->num_vcpus();
  vm_base_entity_[vm.get()] = base;
  sched::EntityConfig entity_cfg = vm->config().sched;
  if (vm->num_vcpus() > 1 && entity_cfg.gang == 0) {
    // Siblings of an SMP guest form a gang (co-scheduling): a descheduled
    // lock holder must not strand spinning siblings for whole rounds.
    entity_cfg.gang = base + 1;  // nonzero and unique per VM
  }
  for (uint32_t i = 0; i < vm->num_vcpus(); ++i) {
    HYP_RETURN_IF_ERROR(sched_->AddEntity(base + i, entity_cfg));
    entities_[base + i] = EntityRef{vm.get(), i};
    sched_->SetRunnable(base + i, true, clock().now());
  }
  vms_.push_back(std::move(vm));
  return vms_.back().get();
}

Status Host::DestroyVm(Vm* vm) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [vm](const std::unique_ptr<Vm>& p) { return p.get() == vm; });
  if (it == vms_.end()) {
    return NotFoundError("vm is not on this host");
  }
  sched::EntityId base = vm_base_entity_[vm];
  for (uint32_t i = 0; i < vm->num_vcpus(); ++i) {
    (void)sched_->RemoveEntity(base + i);
    entities_.erase(base + i);
  }
  vm_base_entity_.erase(vm);
  vms_.erase(it);  // ~Vm cancels the VM's pending clock events
  return OkStatus();
}

Vm* Host::FindVm(const std::string& name) {
  for (const auto& vm : vms_) {
    if (vm->name() == name) {
      return vm.get();
    }
  }
  return nullptr;
}

sched::EntityId Host::EntityOf(Vm* vm, uint32_t vcpu) const {
  auto it = vm_base_entity_.find(vm);
  return it == vm_base_entity_.end() ? sched::kIdle : it->second + vcpu;
}

void Host::WakeVcpu(const Phase& ph, Vm* vm, uint32_t vcpu) {
  sched::EntityId id = EntityOf(vm, vcpu);
  if (id == sched::kIdle) {
    return;
  }
  vm->vcpu(vcpu).state.waiting = false;
  if (SliceWork* slice = tls_slice_; slice != nullptr && slice->host == this) {
    // Only an executing lane can be inside a slice for this host.
    assert(ph.AsExecute() != nullptr);
    slice->wakes.push_back(WakeOp{vm, vcpu, true});
    return;
  }
  (void)ph;
  sched_->SetRunnable(id, true, clock().now());
}

void Host::BlockVcpu(const Phase& ph, Vm* vm, uint32_t vcpu) {
  sched::EntityId id = EntityOf(vm, vcpu);
  if (id == sched::kIdle) {
    return;
  }
  if (SliceWork* slice = tls_slice_; slice != nullptr && slice->host == this) {
    assert(ph.AsExecute() != nullptr);
    slice->wakes.push_back(WakeOp{vm, vcpu, false});
    return;
  }
  (void)ph;
  sched_->SetRunnable(id, false, clock().now());
}

void Host::SetFaultInjector(fault::FaultInjector* injector, std::string site) {
  fault_injector_ = injector;
  fault_site_ = std::move(site);
}

void Host::CrashAllVms(const Status& reason) {
  for (auto& vm : vms_) {
    if (vm->state() == VmState::kRunning) {
      vm->Crash(serial_, reason);
    }
  }
}

void Host::RunFor(SimTime duration) { domain_->RunFor(duration); }

void Host::FaultGate(SimTime end) {
  paused_until_ = 0;
  if (fault_injector_ == nullptr) {
    return;
  }
  SimTime now = clock().now();
  if (fault_injector_->TakeCrash(fault_site_, now)) {
    failed_ = true;
    CrashAllVms(UnavailableError("injected host crash on " + config_.name));
  }
  if (auto until = fault_injector_->PauseUntil(fault_site_, now)) {
    // The host is stalled: no vCPU dispatches while now < paused_until_, but
    // shared time and device events still advance (an SMI-style stall). The
    // accounting is incremental — the domain may advance the clock by less
    // than the window per round when other members still run.
    paused_until_ = *until;
    SimTime begin = std::max(now, pause_accounted_until_);
    SimTime stop = std::min(*until, end);
    if (stop > begin) {
      stats_.fault_pause_time += stop - begin;
      pause_accounted_until_ = stop;
    }
  }
}

SimTime Host::DispatchAnchor() const {
  return std::max(pcpu_heap_.top().first, paused_until_);
}

void Host::DispatchRound(SimTime window_end, SimTime end,
                         std::map<const void*, const Vm*>& store_users, RoundPlan& plan) {
  SimTime now = clock().now();
  if (now < paused_until_) {
    return;  // stalled inside an injected pause window: nothing dispatches
  }
  // VMs sharing one BlockStore must not execute in the same round: their
  // concurrent store accesses would race and perturb per-site fault-op
  // ordering. The first VM to claim a store vetoes the others until commit.
  // The map spans the whole domain round — a store can be shared across
  // hosts mid-migration.
  auto eligible = [&](sched::EntityId id) {
    const EntityRef& ref = entities_.at(id);
    const void* store = ref.vm->config().disk.get();
    if (store == nullptr) {
      return true;
    }
    auto it = store_users.find(store);
    if (it == store_users.end() || it->second == ref.vm) {
      return true;
    }
    plan.vetoed = true;
    return false;
  };

  sched_->BeginRound();
  while (!pcpu_heap_.empty()) {
    auto [free_at, p] = pcpu_heap_.top();
    SimTime t = std::max(free_at, now);
    if (t >= window_end) {
      break;
    }
    pcpu_heap_.pop();
    sched::EntityId id = sched_->PickNext(t, eligible);
    if (id == sched::kIdle) {
      ++stats_.idle_picks;
      plan.idles.push_back(IdlePick{p, t, std::min(window_end, sched_->NextEligibleTime(t))});
      continue;
    }
    EntityRef ref = entities_[id];
    if (const void* store = ref.vm->config().disk.get()) {
      store_users.emplace(store, ref.vm);
    }
    SliceWork work;
    work.host = this;
    work.pcpu = p;
    work.start = t;
    work.id = id;
    work.ref = ref;
    // The budget deliberately ignores window_end: like the serial loop, a
    // slice may overrun the next event (the event is simply processed after).
    work.budget = std::min<uint64_t>(config_.timeslice_cycles, end - t);
    plan.slices.push_back(std::move(work));
  }
}

void Host::CommitSlices(const CommitPhase& commit, RoundPlan& plan) {
  // Staged effects merge in dispatch order — (start time, pCPU index) — so
  // the post-round state is identical for any worker count.
  for (SliceWork& work : plan.slices) {
    clock().CommitStage(commit, work.clock_stage);
    switch_.CommitStage(commit, work.tx_stage);
    pool_.CommitStage(commit, work.pool_stage);
    for (const WakeOp& op : work.wakes) {
      sched::EntityId wid = EntityOf(op.vm, op.vcpu);
      if (wid != sched::kIdle) {
        sched_->SetRunnable(wid, op.runnable, work.start);
      }
      if (op.runnable) {
        plan.wake_horizon = std::min(plan.wake_horizon, work.start);
      }
    }
    internal::WriteLogText(commit, work.log);

    SimTime done = work.start + std::max<uint64_t>(work.result.cycles, 1);
    // Switching the pCPU to a different vCPU costs a world switch plus the
    // cold-cache tail; consolidation efficiency decays slightly with it.
    if (pcpu_last_entity_[work.pcpu] != work.id) {
      done += config_.costs.context_switch;
      pcpu_last_entity_[work.pcpu] = work.id;
      ++stats_.context_switches;
      stats_.pcpu[work.pcpu].steal_cycles += config_.costs.context_switch;
    }
    pcpu_free_at_[work.pcpu] = done;
    pcpu_heap_.push({done, work.pcpu});
    plan.min_done = std::min(plan.min_done, done);
    ++stats_.slices;
    stats_.cycles_executed += work.result.cycles;
    stats_.pcpu[work.pcpu].busy_cycles += work.result.cycles;

    bool still_runnable =
        work.result.end == SliceEnd::kBudget || work.result.end == SliceEnd::kYielded;
    sched_->Account(work.id, work.result.cycles, still_runnable, done);
  }

  if (!plan.slices.empty() && verify::AuditEnabled()) {
    verify::AuditReport report = AuditFrameAccounting();
    if (!report.ok()) {
      CrashAllVms(InternalError("frame accounting audit failed on " + config_.name +
                                ":\n" + report.ToString()));
    }
  }
}

void Host::ParkIdles(const RoundPlan& plan, SimTime domain_min_done,
                     SimTime event_horizon) {
  // Idle pCPUs park until their pick could change: a wake committed this
  // round (visible from the waker's slice start); after a store veto, the
  // end of the earliest conflicting slice — which may live on another member
  // host, hence the domain-wide bound; or the next pending clock event as of
  // the barrier. The last clamp matters across hosts: a frame committed this
  // round can wake a vCPU on a member whose pCPUs all parked before the
  // delivery event existed, and no busy pCPU over there would ever re-derive
  // the horizon. Without any bound, the park time is strictly in the future,
  // so rounds always advance.
  SimTime horizon = std::min(plan.wake_horizon, event_horizon);
  if (plan.vetoed) {
    horizon = std::min(horizon, domain_min_done);
  }
  for (const IdlePick& idle : plan.idles) {
    SimTime park = idle.park;
    if (horizon != ~SimTime{0}) {
      park = std::min(park, std::max(idle.start, horizon));
    }
    if (park > idle.start) {
      stats_.pcpu[idle.pcpu].idle_time += park - idle.start;
    }
    pcpu_free_at_[idle.pcpu] = park;
    pcpu_heap_.push({park, idle.pcpu});
  }
  ++stats_.rounds;
}

void Host::ExecuteSlice(SliceWork& work) {
  // The lane's ExecutePhase: every staging API below takes it, and its
  // lifetime marks this thread as inside-execute so ScopedSerialPhase
  // cannot be minted from guest-triggered code.
  ExecutePhase ep;
  work.clock_stage.clock = &domain_->clock();
  work.clock_stage.vnow = work.start;
  work.tx_stage.sw = &switch_;
  work.tx_stage.vnow = work.start;
  work.pool_stage.pool = &pool_;
  SimClock::SetStage(ep, &work.clock_stage);
  net::VirtualSwitch::SetStage(ep, &work.tx_stage);
  mem::FramePool::SetStage(ep, &work.pool_stage);
  internal::SetThreadLogSink(ep, &work.log);
  tls_slice_ = &work;
  work.result = work.ref.vm->RunVcpuSlice(ep, work.ref.vcpu, work.budget, work.start);
  tls_slice_ = nullptr;
  internal::SetThreadLogSink(ep, nullptr);
  mem::FramePool::SetStage(ep, nullptr);
  net::VirtualSwitch::SetStage(ep, nullptr);
  SimClock::SetStage(ep, nullptr);
}

bool Host::AnyVcpuRunnable() const {
  for (const auto& [id, ref] : entities_) {
    (void)id;
    const cpu::CpuState& s = ref.vm->vcpu(ref.vcpu).state;
    if (ref.vm->state() == VmState::kRunning && !s.halted && !s.waiting) {
      return true;
    }
  }
  return false;
}

bool Host::RunUntilQuiescent(SimTime max_time) {
  for (;;) {
    bool any_runnable = AnyVcpuRunnable();
    if (!any_runnable && !clock().HasPending()) {
      return true;
    }
    if (clock().now() >= max_time) {
      return false;
    }
    SimTime before = clock().now();
    SimTime step = max_time - before;
    if (any_runnable) {
      step = std::min<SimTime>(step, 50 * kSimTicksPerMs);
    } else {
      // Nothing schedulable: hop straight to the next event instead of
      // grinding through fixed-size idle chunks.
      step = std::min<SimTime>(step, std::max<SimTime>(clock().NextEventTime() - before, 1));
    }
    RunFor(step);
    if (clock().now() == before) {
      return false;  // no progress possible
    }
  }
}

verify::AuditReport Host::AuditFrameAccounting() const {
  verify::AuditReport report;
  std::vector<const mem::GuestMemory*> spaces;
  spaces.reserve(vms_.size());
  for (const auto& vm : vms_) {
    spaces.push_back(&vm->memory());
  }
  verify::AuditFrameAccounting(pool_, spaces, &report);
  return report;
}

bool Host::RunUntilVmStops(Vm* vm, SimTime max_time) {
  while (clock().now() < max_time && vm->state() == VmState::kRunning) {
    RunFor(std::min<SimTime>(max_time - clock().now(), 10 * kSimTicksPerMs));
  }
  return vm->state() != VmState::kRunning;
}

}  // namespace hyperion::core
