#include "src/core/worker_pool.h"

namespace hyperion::core {

WorkerPool::WorkerPool(uint32_t threads) {
  threads_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (threads_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller participates so a 1-thread pool still gets 2-way overlap.
  Drain(fn, count);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return completed_ == count_ && running_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // fn_ is null between batches: a worker that missed a short batch
      // entirely must keep sleeping rather than run with stale state.
      work_cv_.wait(lock,
                    [&] { return stop_ || (generation_ != seen && fn_ != nullptr); });
      if (stop_) {
        return;
      }
      seen = generation_;
      fn = fn_;
      count = count_;
      ++running_;
    }
    Drain(*fn, count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::Drain(const std::function<void(size_t)>& fn, size_t count) {
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      return;
    }
    fn(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace hyperion::core
