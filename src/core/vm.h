// The virtual machine: guest memory, vCPUs, devices, and the hypercall ABI.
//
// A Vm is created on (and owned by) a Host, which supplies the frame pool,
// simulated clock, virtual switch and scheduler. The Vm owns everything
// guest-visible: its GuestMemory, memory virtualizer, per-vCPU execution
// engines, MMIO bus and devices.

#ifndef SRC_CORE_VM_H_
#define SRC_CORE_VM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/asm/assembler.h"
#include "src/cpu/context.h"
#include "src/cpu/dbt.h"
#include "src/devices/emulated_blk.h"
#include "src/devices/emulated_net.h"
#include "src/devices/mmio.h"
#include "src/devices/pic.h"
#include "src/devices/uart.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/virtualizer.h"
#include "src/sched/scheduler.h"
#include "src/util/phase.h"
#include "src/storage/block_store.h"
#include "src/verify/audit.h"
#include "src/virtio/virtio_blk.h"
#include "src/virtio/virtio_console.h"
#include "src/virtio/virtio_net.h"

namespace hyperion::core {

// How disk and network attach to the guest.
enum class IoModel : uint8_t {
  kNone = 0,       // no device
  kEmulated = 1,   // register-level PIO emulation (trap per register access)
  kParavirt = 2,   // virtio rings (DMA + batched kicks)
};

struct VmConfig {
  std::string name = "vm";
  uint32_t ram_bytes = 4u << 20;
  uint32_t num_vcpus = 1;
  mmu::PagingMode paging_mode = mmu::PagingMode::kNested;
  cpu::EngineKind engine = cpu::EngineKind::kInterpreter;
  cpu::DbtOptions dbt;  // tier-2 threshold / cache size (DBT engines only)
  cpu::VirtMode virt_mode = cpu::VirtMode::kHardwareAssist;
  sched::EntityConfig sched;
  size_t tlb_entries = 256;

  IoModel disk_model = IoModel::kNone;
  std::shared_ptr<storage::BlockStore> disk;

  IoModel net_model = IoModel::kNone;
  net::MacAddr mac = 0;  // must be nonzero when net_model != kNone
  virtio::VirtioNetOptions net_opts;
};

enum class VmState : uint8_t {
  kRunning = 0,
  kPaused,
  kShutdown,  // guest powered itself off (halt/shutdown hypercall)
  kCrashed,   // unrecoverable guest or VMM error
};

// Why a vCPU slice ended, from the host scheduler's perspective.
enum class SliceEnd : uint8_t {
  kBudget = 0,   // consumed its timeslice
  kIdle,         // parked in WFI
  kHalted,       // vCPU (or whole VM) done
  kYielded,      // guest yielded the remainder of its slice
  kStalled,      // blocked on the VMM (e.g. post-copy page fetch)
};

struct SliceResult {
  SliceEnd end = SliceEnd::kBudget;
  uint64_t cycles = 0;
};

class Host;

class Vm {
 public:
  // Invoked on a missing-page access (post-copy demand paging). Runs inside
  // the faulting vCPU's slice, so it receives the slice's ExecutePhase —
  // everything it does (demand-fetch scheduling, wakes) must stage. Returns
  // true when the fault is being handled asynchronously: the vCPU stalls and
  // must be woken once the page arrives. Returning false crashes the VM.
  using MissingPageHandler =
      std::function<bool(const ExecutePhase& ph, uint32_t vcpu, uint32_t gpn)>;

  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  const VmConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  VmState state() const { return state_; }
  uint32_t num_vcpus() const { return static_cast<uint32_t>(vcpus_.size()); }

  // Loads an assembled image into guest RAM and points vCPU 0 at its entry.
  Status LoadImage(const assembler::Image& image);

  // Runs one vCPU for at most `budget` cycles, handling hypercalls inline.
  // Only the host run loop can mint the ExecutePhase this demands; the
  // token (and the effect-phase pointers derived from it) threads through
  // every side effect the slice performs.
  SliceResult RunVcpuSlice(const ExecutePhase& ph, uint32_t vcpu, uint64_t budget,
                           SimTime now);

  // Lifecycle. Dual-regime: Pause/Resume run serially (migration, tests)
  // but Crash also fires from inside a slice (engine fault), so all three
  // take the caller's phase and route their scheduler effects through it.
  void Pause(const Phase& ph);
  void Resume(const Phase& ph);
  bool AllVcpusHalted() const;

  // --- Introspection / host-side controls -----------------------------------

  mem::GuestMemory& memory() { return *memory_; }
  const mem::GuestMemory& memory() const { return *memory_; }
  mmu::MemoryVirtualizer& virt() { return *virt_; }
  cpu::VcpuContext& vcpu(uint32_t i) { return vcpus_[i]->ctx; }
  const cpu::VcpuContext& vcpu(uint32_t i) const { return vcpus_[i]->ctx; }
  cpu::ExecutionEngine& engine(uint32_t i) { return *vcpus_[i]->engine; }
  devices::MmioBus& bus() { return bus_; }
  devices::Uart* uart() { return uart_.get(); }
  devices::InterruptController& pic() { return pic_; }
  devices::EmulatedBlockDevice* emulated_blk() { return emu_blk_.get(); }
  virtio::VirtioBlk* virtio_blk() { return vblk_.get(); }
  virtio::VirtioNet* virtio_net() { return vnet_.get(); }
  virtio::VirtioConsole* virtio_console() { return vcon_.get(); }
  devices::EmulatedNetDevice* emulated_net() { return emu_net_.get(); }

  // Console text accumulated through the console hypercalls.
  const std::string& console() const { return console_; }
  // Values recorded by the kLogValue hypercall (test/bench instrumentation).
  const std::vector<uint32_t>& logged_values() const { return logged_; }

  // Balloon target communicated to the guest driver (pages).
  void SetBalloonTarget(uint32_t pages) { balloon_target_pages_ = pages; }
  uint32_t balloon_target() const { return balloon_target_pages_; }
  uint32_t ballooned_pages() const { return ballooned_pages_; }

  void SetMissingPageHandler(MissingPageHandler handler) {
    missing_page_handler_ = std::move(handler);
  }

  // Snapshot restore support: replaces the host-side VM state (console
  // buffer, logged values, balloon bookkeeping).
  void RestoreHostSideState(std::string console, std::vector<uint32_t> logged,
                            uint32_t balloon_target) {
    console_ = std::move(console);
    logged_ = std::move(logged);
    balloon_target_pages_ = balloon_target;
    ballooned_pages_ = 0;
    for (uint32_t gpn = 0; gpn < memory_->num_pages(); ++gpn) {
      if (!memory_->IsPresent(gpn)) {
        ++ballooned_pages_;
      }
    }
  }

  // Aggregated stats over all vCPUs.
  cpu::VcpuStats TotalStats() const;

  // Runs the invariant auditors (src/verify) over this VM: MMU coherence for
  // *every* vCPU's TLB, each checked under that vCPU's own STATUS/PTBR CSRs,
  // plus every virtio queue. Called automatically at slice boundaries when
  // HYPERION_AUDIT is on (a violation crashes the VM); tests may call it
  // directly at any trap boundary.
  verify::AuditReport AuditInvariants() const;

  // Marks the VM crashed (also used by the host on fatal conditions).
  void Crash(const Phase& ph, const Status& reason);
  const Status& crash_reason() const { return crash_reason_; }

  // Invalidates cached translations for a guest page on every vCPU engine
  // and the virtualizer (page arrival, KSM, balloon).
  void InvalidateGpn(uint32_t gpn);

 private:
  friend class Host;
  Vm(Host* host, VmConfig config);
  Status Init(const SerialPhase& ph);

  struct VcpuUnit {
    cpu::VcpuContext ctx;
    std::unique_ptr<cpu::ExecutionEngine> engine;
  };

  // Handles one hypercall; returns false when the slice must end (yield,
  // shutdown, stall) with `end` set accordingly.
  bool HandleHypercall(const ExecutePhase& ph, uint32_t vcpu, SimTime now, SliceEnd* end);

  // RunVcpuSlice body; the public wrapper appends the audit hook.
  SliceResult RunVcpuSliceInner(const ExecutePhase& ph, uint32_t vcpu, uint64_t budget,
                                SimTime now);

  Host* host_;
  VmConfig config_;
  // Owner tag for every clock event this VM (or its devices) schedules;
  // ~Vm cancels them so in-flight timers/completions never dangle.
  uint64_t clock_owner_ = 0;
  ClockRef clock_;
  VmState state_ = VmState::kRunning;
  Status crash_reason_;

  std::unique_ptr<mem::GuestMemory> memory_;
  std::unique_ptr<mmu::MemoryVirtualizer> virt_;
  std::vector<std::unique_ptr<VcpuUnit>> vcpus_;

  devices::MmioBus bus_;
  devices::InterruptController pic_;
  std::unique_ptr<devices::Uart> uart_;
  std::unique_ptr<devices::EmulatedBlockDevice> emu_blk_;
  std::unique_ptr<devices::EmulatedNetDevice> emu_net_;
  std::unique_ptr<virtio::VirtioBlk> vblk_;
  std::unique_ptr<virtio::VirtioNet> vnet_;
  std::unique_ptr<virtio::VirtioConsole> vcon_;

  // vCPU whose slice is currently executing, or kNoVcpu between slices.
  // Same-VM slices always run serially on one lane, so a plain field is
  // race-free; it attributes IPI doorbell raises to their sender.
  static constexpr uint32_t kNoVcpu = UINT32_MAX;
  uint32_t running_vcpu_ = kNoVcpu;

  std::string console_;
  std::vector<uint32_t> logged_;
  uint32_t balloon_target_pages_ = 0;
  uint32_t ballooned_pages_ = 0;
  MissingPageHandler missing_page_handler_;
};

}  // namespace hyperion::core

#endif  // SRC_CORE_VM_H_
