#include "src/core/vm.h"

#include "src/core/host.h"
#include "src/util/logging.h"

namespace hyperion::core {

using isa::Hypercall;

Vm::Vm(Host* host, VmConfig config) : host_(host), config_(std::move(config)) {}

Vm::~Vm() {
  // Teardown only happens between rounds; the runtime-checked token is the
  // evidence (ScopedSerialPhase asserts we are not on a worker lane).
  ScopedSerialPhase serial;
  if (config_.mac != 0 && config_.net_model != IoModel::kNone) {
    (void)host_->vswitch().Detach(serial, config_.mac);
  }
  // Drop every pending clock event that captured `this` (armed timers,
  // in-flight block completions) — they would otherwise fire into freed
  // memory after DestroyVm.
  host_->clock().CancelOwner(serial, clock_owner_);
}

Status Vm::Init(const SerialPhase& ph) {
  if (config_.num_vcpus == 0 || config_.num_vcpus > 16) {
    return InvalidArgumentError("vcpu count must be in [1, 16]");
  }
  clock_owner_ = host_->clock().NewOwner();
  clock_ = ClockRef(&host_->clock(), clock_owner_);
  HYP_ASSIGN_OR_RETURN(memory_, mem::GuestMemory::Create(&host_->pool(), config_.ram_bytes));
  virt_ = mmu::MakeVirtualizer(config_.paging_mode, memory_.get(), host_->costs(),
                               config_.tlb_entries);
  virt_->ConfigureVcpus(config_.num_vcpus);
  memory_->SetInvalidateHook([this](uint32_t gpn) { InvalidateGpn(gpn); });

  // Platform devices.
  HYP_RETURN_IF_ERROR(bus_.Map(devices::kPicBase, devices::kDeviceWindow, &pic_));
  uart_ = std::make_unique<devices::Uart>(devices::IrqLine(&pic_, devices::kUartIrq));
  HYP_RETURN_IF_ERROR(bus_.Map(devices::kUartBase, devices::kDeviceWindow, uart_.get()));

  // Disk.
  if (config_.disk_model != IoModel::kNone) {
    if (config_.disk == nullptr) {
      return InvalidArgumentError("disk model set but no disk attached");
    }
    if (config_.disk_model == IoModel::kEmulated) {
      emu_blk_ = std::make_unique<devices::EmulatedBlockDevice>(
          config_.disk.get(), devices::IrqLine(&pic_, devices::kBlkIrq), clock_,
          host_->costs());
      HYP_RETURN_IF_ERROR(bus_.Map(devices::kBlkBase, devices::kDeviceWindow, emu_blk_.get()));
    } else {
      vblk_ = std::make_unique<virtio::VirtioBlk>(
          memory_.get(), devices::IrqLine(&pic_, devices::kVirtioIrqBase + 0),
          config_.disk.get(), clock_, host_->costs());
      HYP_RETURN_IF_ERROR(
          bus_.Map(devices::kVirtioBase + 0 * devices::kVirtioStride, devices::kVirtioStride,
                   vblk_.get()));
    }
  }

  // NIC.
  if (config_.net_model != IoModel::kNone) {
    if (config_.mac == 0) {
      return InvalidArgumentError("net model set but mac is zero");
    }
    if (config_.net_model == IoModel::kEmulated) {
      emu_net_ = std::make_unique<devices::EmulatedNetDevice>(
          &host_->vswitch(), config_.mac, devices::IrqLine(&pic_, devices::kNetIrq));
      HYP_RETURN_IF_ERROR(bus_.Map(devices::kNetBase, devices::kDeviceWindow, emu_net_.get()));
      HYP_RETURN_IF_ERROR(host_->vswitch().Attach(ph, config_.mac, emu_net_.get()));
    } else {
      vnet_ = std::make_unique<virtio::VirtioNet>(
          memory_.get(), devices::IrqLine(&pic_, devices::kVirtioIrqBase + 1),
          &host_->vswitch(), config_.mac, clock_, config_.net_opts);
      HYP_RETURN_IF_ERROR(
          bus_.Map(devices::kVirtioBase + 1 * devices::kVirtioStride, devices::kVirtioStride,
                   vnet_.get()));
      HYP_RETURN_IF_ERROR(host_->vswitch().Attach(ph, config_.mac, vnet_.get()));
    }
  }

  // Paravirtual console (always available).
  vcon_ = std::make_unique<virtio::VirtioConsole>(
      memory_.get(), devices::IrqLine(&pic_, devices::kVirtioIrqBase + 2));
  HYP_RETURN_IF_ERROR(bus_.Map(devices::kVirtioBase + 2 * devices::kVirtioStride,
                               devices::kVirtioStride, vcon_.get()));

  // vCPUs.
  for (uint32_t i = 0; i < config_.num_vcpus; ++i) {
    auto unit = std::make_unique<VcpuUnit>();
    unit->ctx.memory = memory_.get();
    unit->ctx.virt = virt_.get();
    unit->ctx.mmio = &bus_;
    unit->ctx.costs = &host_->costs();
    unit->ctx.virt_mode = config_.virt_mode;
    unit->ctx.state.hartid = i;
    // Secondary vCPUs park until the boot vCPU starts them (kStartVcpu).
    unit->ctx.state.waiting = i != 0;
    unit->engine = cpu::MakeEngine(config_.engine, config_.dbt);
    vcpus_.push_back(std::move(unit));
  }

  // External interrupts route to vCPU 0 (single-IOAPIC model). The sink
  // fires in whatever phase asserted the line (MMIO write from a slice,
  // device completion from a serial callback) and passes that phase on.
  pic_.SetSink([this](const Phase& sink_ph, bool level) {
    cpu::CpuState& s = vcpus_[0]->ctx.state;
    if (level) {
      s.RaisePending(isa::Interrupt::kExternal);
      host_->WakeVcpu(sink_ph, this, 0);
    } else {
      s.ClearPending(isa::Interrupt::kExternal);
    }
  });

  // IPI doorbells drive the per-target software-interrupt line. The sink
  // fires only on level edges (the PIC coalesces re-raises), in the phase of
  // the access that moved the doorbell: a sibling's MMIO write from its
  // slice, or a snapshot restore re-raising pending IPIs from a serial
  // phase. Sends are attributed to the vCPU whose slice is executing.
  pic_.SetIpiSink([this](const Phase& sink_ph, uint32_t vcpu, bool level) {
    if (vcpu >= num_vcpus()) {
      return;  // doorbell bits beyond the vCPU count are inert
    }
    cpu::CpuState& s = vcpus_[vcpu]->ctx.state;
    if (level) {
      s.RaisePending(isa::Interrupt::kSoftware);
      if (running_vcpu_ != kNoVcpu) {
        ++vcpus_[running_vcpu_]->ctx.stats.ipis_sent;
      }
      host_->WakeVcpu(sink_ph, this, vcpu);
    } else {
      s.ClearPending(isa::Interrupt::kSoftware);
    }
  });
  return OkStatus();
}

Status Vm::LoadImage(const assembler::Image& image) {
  HYP_RETURN_IF_ERROR(memory_->Write(image.base, image.bytes.data(), image.bytes.size()));
  vcpus_[0]->ctx.state.pc = image.entry();
  for (auto& u : vcpus_) {
    u->engine->FlushCodeCache();
  }
  virt_->FlushAll();
  return OkStatus();
}

SliceResult Vm::RunVcpuSlice(const ExecutePhase& ph, uint32_t vcpu_idx, uint64_t budget,
                             SimTime now) {
  // Publish the slice's phase to the paths that cannot take it as a
  // parameter: the engine reaches it through VcpuContext, and transparent
  // COW breaks inside GuestMemory::Write charge their decref to it.
  vcpus_[vcpu_idx]->ctx.phase = &ph;
  memory_->SetEffectPhase(&ph);
  // Select this vCPU's private TLB (and shadow active root); the engine's
  // fast-translation array validates against its generation automatically.
  virt_->SetActiveVcpu(vcpu_idx);
  running_vcpu_ = vcpu_idx;
  SliceResult res = RunVcpuSliceInner(ph, vcpu_idx, budget, now);
  running_vcpu_ = kNoVcpu;
  memory_->SetEffectPhase(nullptr);
  vcpus_[vcpu_idx]->ctx.phase = nullptr;
  // Slice boundaries are trap boundaries: every VMM data structure must be
  // coherent here, whatever the guest just did.
  if (verify::AuditEnabled() && state_ == VmState::kRunning) {
    verify::AuditReport report = AuditInvariants();
    if (!report.ok()) {
      Crash(ph, InternalError("invariant audit failed for " + name() + ":\n" +
                              report.ToString()));
      res.end = SliceEnd::kHalted;
    }
  }
  return res;
}

verify::AuditReport Vm::AuditInvariants() const {
  verify::AuditReport report;
  // Every sibling's TLB must be coherent at a trap boundary, not just the
  // vCPU that happened to run: a shootdown bug shows up precisely as a stale
  // entry in somebody *else's* TLB.
  for (uint32_t i = 0; i < num_vcpus(); ++i) {
    const cpu::CpuState& s = vcpus_[i]->ctx.state;
    verify::AuditMmuCoherence(*virt_, s.paging_enabled(), s.ptbr, &report, i);
  }
  if (vblk_ != nullptr) {
    verify::AuditVirtioDevice(*vblk_, *memory_, name() + "/vblk", &report);
  }
  if (vnet_ != nullptr) {
    verify::AuditVirtioDevice(*vnet_, *memory_, name() + "/vnet", &report);
  }
  if (vcon_ != nullptr) {
    verify::AuditVirtioDevice(*vcon_, *memory_, name() + "/vcon", &report);
  }
  return report;
}

SliceResult Vm::RunVcpuSliceInner(const ExecutePhase& ph, uint32_t vcpu_idx,
                                  uint64_t budget, SimTime now) {
  SliceResult res;
  if (state_ != VmState::kRunning) {
    res.end = SliceEnd::kHalted;
    return res;
  }
  VcpuUnit& u = *vcpus_[vcpu_idx];
  uint64_t used = 0;
  while (used < budget) {
    u.ctx.slice_start = now + used;
    cpu::RunResult r = u.engine->Run(u.ctx, budget - used);
    used += r.cycles;
    res.cycles = used;
    switch (r.reason) {
      case cpu::ExitReason::kBudget:
        res.end = SliceEnd::kBudget;
        return res;
      case cpu::ExitReason::kHalt:
        if (AllVcpusHalted() && state_ == VmState::kRunning) {
          state_ = VmState::kShutdown;
        }
        res.end = SliceEnd::kHalted;
        return res;
      case cpu::ExitReason::kWfi: {
        // Arrange a timer wake if one is due in the future.
        uint64_t timecmp = u.ctx.state.timecmp;
        SimTime at = now + used;
        if (timecmp != 0 && timecmp > at) {
          Vm* vm = this;
          uint32_t idx = vcpu_idx;
          clock_.ScheduleAt(ph, timecmp, [vm, idx](const SerialPhase& sp) {
            if (vm->state_ == VmState::kRunning && vm->vcpus_[idx]->ctx.state.waiting) {
              vm->host_->WakeVcpu(sp, vm, idx);
            }
          });
        }
        res.end = SliceEnd::kIdle;
        return res;
      }
      case cpu::ExitReason::kHypercall: {
        SliceEnd end = SliceEnd::kBudget;
        if (!HandleHypercall(ph, vcpu_idx, now + used, &end)) {
          res.end = end;
          return res;
        }
        continue;
      }
      case cpu::ExitReason::kMissingPage: {
        if (missing_page_handler_ && missing_page_handler_(ph, vcpu_idx, r.missing_gpn)) {
          res.end = SliceEnd::kStalled;
          return res;
        }
        Crash(ph, InternalError("access to missing page " + std::to_string(r.missing_gpn) +
                                " with no post-copy handler"));
        res.end = SliceEnd::kHalted;
        return res;
      }
      case cpu::ExitReason::kError:
        Crash(ph, r.error);
        res.end = SliceEnd::kHalted;
        return res;
    }
  }
  res.end = SliceEnd::kBudget;
  return res;
}

bool Vm::HandleHypercall(const ExecutePhase& ph, uint32_t vcpu_idx, SimTime now,
                         SliceEnd* end) {
  cpu::CpuState& s = vcpus_[vcpu_idx]->ctx.state;
  auto num = static_cast<Hypercall>(s.ReadReg(isa::kA0));
  uint32_t a1 = s.ReadReg(isa::kA1);
  uint32_t a2 = s.ReadReg(isa::kA2);
  uint32_t ret = 0;

  switch (num) {
    case Hypercall::kConsolePutChar:
      console_.push_back(static_cast<char>(a1 & 0xFF));
      break;
    case Hypercall::kConsoleWrite: {
      // ABI: a1 = guest-physical buffer, a2 = length.
      std::string buf(a2, '\0');
      if (memory_->Read(a1, buf.data(), a2).ok()) {
        console_ += buf;
      } else {
        ret = UINT32_MAX;
      }
      break;
    }
    case Hypercall::kYield:
      s.WriteReg(isa::kA0, 0);
      *end = SliceEnd::kYielded;
      return false;
    case Hypercall::kGetTimeUs:
      ret = static_cast<uint32_t>(now / kSimTicksPerUs);
      break;
    case Hypercall::kShutdown:
      for (auto& u : vcpus_) {
        u->ctx.state.halted = true;
      }
      state_ = VmState::kShutdown;
      *end = SliceEnd::kHalted;
      return false;
    case Hypercall::kBalloonInflate: {
      Status st = memory_->ReleasePage(ph, a1);
      if (st.ok()) {
        InvalidateGpn(a1);
        ++ballooned_pages_;
      } else {
        ret = 1;
      }
      break;
    }
    case Hypercall::kBalloonDeflate: {
      Status st = memory_->PopulatePage(a1);
      if (st.ok()) {
        InvalidateGpn(a1);
        if (ballooned_pages_ > 0) {
          --ballooned_pages_;
        }
      } else {
        ret = 1;
      }
      break;
    }
    case Hypercall::kVirtioKick: {
      virtio::VirtioDevice* dev = nullptr;
      switch (a1) {
        case 0:
          dev = vblk_.get();
          break;
        case 1:
          dev = vnet_.get();
          break;
        case 2:
          dev = vcon_.get();
          break;
        default:
          break;
      }
      if (dev == nullptr || !dev->Kick(ph, static_cast<uint16_t>(a2)).ok()) {
        ret = 1;
      }
      break;
    }
    case Hypercall::kLogValue:
      logged_.push_back(a1);
      break;
    case Hypercall::kBalloonGetTarget:
      ret = balloon_target_pages_;
      break;
    case Hypercall::kStartVcpu: {
      uint32_t a3 = s.ReadReg(isa::kA3);
      if (a1 == 0 || a1 >= num_vcpus()) {
        ret = 1;
        break;
      }
      cpu::CpuState& target = vcpus_[a1]->ctx.state;
      if (!target.waiting || target.halted) {
        ret = 2;  // already started
        break;
      }
      target.pc = a2;
      target.WriteReg(isa::kA0, a3);
      host_->WakeVcpu(ph, this, a1);
      break;
    }
    case Hypercall::kVcpuCount:
      ret = num_vcpus();
      break;
    default:
      ret = UINT32_MAX;  // unknown hypercall
      break;
  }
  s.WriteReg(isa::kA0, ret);
  return true;
}

void Vm::Pause(const Phase& ph) {
  if (state_ == VmState::kRunning) {
    state_ = VmState::kPaused;
    for (uint32_t i = 0; i < num_vcpus(); ++i) {
      host_->BlockVcpu(ph, this, i);
    }
  }
}

void Vm::Resume(const Phase& ph) {
  if (state_ == VmState::kPaused) {
    state_ = VmState::kRunning;
    for (uint32_t i = 0; i < num_vcpus(); ++i) {
      if (!vcpus_[i]->ctx.state.halted && !vcpus_[i]->ctx.state.waiting) {
        host_->WakeVcpu(ph, this, i);
      }
    }
  }
}

bool Vm::AllVcpusHalted() const {
  for (const auto& u : vcpus_) {
    if (!u->ctx.state.halted) {
      return false;
    }
  }
  return true;
}

cpu::VcpuStats Vm::TotalStats() const {
  cpu::VcpuStats total;
  for (const auto& u : vcpus_) {
    const cpu::VcpuStats& s = u->ctx.stats;
    total.instructions += s.instructions;
    total.cycles += s.cycles;
    total.mmio_exits += s.mmio_exits;
    total.hypercalls += s.hypercalls;
    total.pt_write_exits += s.pt_write_exits;
    total.cow_breaks += s.cow_breaks;
    total.wfi_exits += s.wfi_exits;
    total.priv_emulations += s.priv_emulations;
    total.guest_traps += s.guest_traps;
    total.interrupts_delivered += s.interrupts_delivered;
    total.dirty_first_writes += s.dirty_first_writes;
    total.blocks_translated += s.blocks_translated;
    total.block_executions += s.block_executions;
    total.chain_hits += s.chain_hits;
    total.traces_formed += s.traces_formed;
    total.trace_executions += s.trace_executions;
    total.mem_fastpath_hits += s.mem_fastpath_hits;
    total.mem_fastpath_misses += s.mem_fastpath_misses;
    total.evictions_surgical += s.evictions_surgical;
    total.evictions_full += s.evictions_full;
    total.ipis_sent += s.ipis_sent;
    total.ipis_received += s.ipis_received;
    total.shootdowns += s.shootdowns;
  }
  return total;
}

void Vm::Crash(const Phase& ph, const Status& reason) {
  HYP_LOG(kError) << "vm '" << config_.name << "' crashed: " << reason.ToString();
  state_ = VmState::kCrashed;
  crash_reason_ = reason;
  for (uint32_t i = 0; i < num_vcpus(); ++i) {
    host_->BlockVcpu(ph, this, i);
  }
}

void Vm::InvalidateGpn(uint32_t gpn) {
  virt_->InvalidateGpn(gpn);
  for (auto& u : vcpus_) {
    u->engine->InvalidateCodePage(gpn);
  }
}

}  // namespace hyperion::core
