// Persistent worker pool for the staged execution core (DESIGN.md §8).
//
// The host run loop hands the pool a batch of N independent lanes per round;
// the pool's threads plus the calling thread claim lane indices from a shared
// atomic counter and run them concurrently. Run() returns only when every
// lane has finished, so the round barrier is also a memory barrier: staged
// side effects written by workers are visible to the host thread when it
// starts committing.
//
// The pool is deliberately dumb — no futures, no task queue, no work
// stealing. One generation counter wakes the threads, one completion counter
// releases the caller. Determinism never depends on which thread runs which
// lane; it comes from the commit step replaying staged effects in dispatch
// order.

#ifndef SRC_CORE_WORKER_POOL_H_
#define SRC_CORE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace hyperion::core {

class WorkerPool {
 public:
  // Spawns `threads` persistent worker threads (0 is allowed: Run() then
  // executes every lane on the calling thread).
  explicit WorkerPool(uint32_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t threads() const { return static_cast<uint32_t>(threads_.size()); }

  // Runs fn(0) .. fn(count - 1) across the pool threads and the calling
  // thread; blocks until all have returned. `fn` must be safe to invoke
  // concurrently for distinct indices. Not reentrant.
  void Run(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerMain();
  // Claims and runs lanes until the batch is exhausted.
  void Drain(const std::function<void(size_t)>& fn, size_t count);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // host -> workers: new batch
  std::condition_variable done_cv_;   // workers -> host: batch finished
  uint64_t generation_ HYP_GUARDED_BY(mu_) = 0;  // bumped once per Run()
  bool stop_ HYP_GUARDED_BY(mu_) = false;

  // Batch state, valid for the current generation.
  const std::function<void(size_t)>* fn_ HYP_GUARDED_BY(mu_) = nullptr;
  size_t count_ HYP_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_{0};       // next unclaimed lane index
  size_t completed_ HYP_GUARDED_BY(mu_) = 0;  // lanes finished
  uint32_t running_ HYP_GUARDED_BY(mu_) = 0;  // workers inside the batch
};

}  // namespace hyperion::core

#endif  // SRC_CORE_WORKER_POOL_H_
