#include "src/devices/emulated_net.h"

#include <cstring>

namespace hyperion::devices {

Result<uint32_t> EmulatedNetDevice::Read(uint32_t offset, uint32_t size) {
  if (size != 4) {
    return InvalidArgumentError("net registers are word-only");
  }
  switch (offset) {
    case 0x00:
      return tx_len_;
    case 0x04:
      return tx_dst_;
    case 0x0C:
      return static_cast<uint32_t>((rx_queue_.empty() ? 0 : 1) | (rx_valid_ ? 2 : 0));
    case 0x10: {
      if (!rx_valid_ || data_ptr_ + 4 > rx_buf_.size()) {
        return FailedPreconditionError("rx data read without a latched frame");
      }
      uint32_t v;
      std::memcpy(&v, rx_buf_.data() + data_ptr_, 4);
      data_ptr_ += 4;
      return v;
    }
    case 0x14:
      return rx_valid_ ? static_cast<uint32_t>(rx_latched_.payload.size()) : 0;
    case 0x18:
      return rx_valid_ ? rx_latched_.src : 0;
    default:
      return NotFoundError("bad net register");
  }
}

Status EmulatedNetDevice::Write(const Phase& ph, uint32_t offset, uint32_t size,
                                uint32_t value) {
  if (size != 4) {
    return InvalidArgumentError("net registers are word-only");
  }
  switch (offset) {
    case 0x00:
      if (value > kBufBytes) {
        return InvalidArgumentError("tx length exceeds buffer");
      }
      tx_len_ = value;
      return OkStatus();
    case 0x04:
      tx_dst_ = value;
      return OkStatus();
    case 0x08:
      if (value == 1) {
        net::Frame f;
        f.src = addr_;
        f.dst = tx_dst_;
        f.payload.Assign(tx_.data(), tx_len_);
        switch_->Transmit(ph, std::move(f));
        ++stats_.tx_frames;
        data_ptr_ = 0;
        return OkStatus();
      }
      if (value == 2) {
        if (rx_queue_.empty()) {
          rx_valid_ = false;
          return OkStatus();
        }
        rx_latched_ = std::move(rx_queue_.front());
        rx_queue_.pop_front();
        std::memset(rx_buf_.data(), 0, rx_buf_.size());
        rx_latched_.payload.CopyTo(rx_buf_.data(), rx_buf_.size());
        rx_valid_ = true;
        data_ptr_ = 0;
        return OkStatus();
      }
      return InvalidArgumentError("bad net command");
    case 0x10: {
      if (data_ptr_ + 4 > tx_.size()) {
        return FailedPreconditionError("tx data write past buffer");
      }
      std::memcpy(tx_.data() + data_ptr_, &value, 4);
      data_ptr_ += 4;
      return OkStatus();
    }
    case 0x1C:
      data_ptr_ = 0;
      return OkStatus();
    default:
      return NotFoundError("bad net register");
  }
}

void EmulatedNetDevice::Reset(const DirectPhase&) {
  tx_len_ = 0;
  tx_dst_ = 0;
  data_ptr_ = 0;
  rx_queue_.clear();
  rx_valid_ = false;
}

void EmulatedNetDevice::OnFrame(const SerialPhase& ph, const net::Frame& frame) {
  if (frame.payload.size() > kBufBytes || rx_queue_.size() >= 64) {
    ++stats_.rx_dropped;
    return;
  }
  rx_queue_.push_back(frame);
  ++stats_.rx_frames;
  irq_.Assert(ph);
}

}  // namespace hyperion::devices
