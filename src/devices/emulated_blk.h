// Fully emulated programmed-I/O block device (IDE-PIO style).
//
// Every register access is a trapped MMIO operation, and sector data moves
// through a one-word DATA port — so a single 512-byte sector costs 128 data
// exits plus command/status traffic. This is the "emulated device" baseline
// the virtio comparison (experiment F3) is measured against.
//
// Register map (word access):
//   0x00 LBA    (RW) starting sector
//   0x04 COUNT  (RW) sectors to transfer (1..kMaxSectorsPerCmd)
//   0x08 CMD    (WO) 1 = READ into buffer, 2 = WRITE buffer to disk
//   0x0C STATUS (RO) bit0 busy, bit1 data ready, bit2 error
//   0x10 DATA   (RW) auto-incrementing word window into the buffer
//   0x14 IRQACK (WO) clear completion latch (and rewind the data pointer)

#ifndef SRC_DEVICES_EMULATED_BLK_H_
#define SRC_DEVICES_EMULATED_BLK_H_

#include <vector>

#include "src/devices/pic.h"
#include "src/storage/block_store.h"
#include "src/util/cost_model.h"
#include "src/util/sim_clock.h"

namespace hyperion::devices {

class EmulatedBlockDevice final : public MmioDevice {
 public:
  static constexpr uint32_t kMaxSectorsPerCmd = 8;

  // `clock` may be invalid, in which case commands complete synchronously
  // (useful in unit tests); with a clock, completion is scheduled at
  // count * blk_sector_cost and the IRQ line fires. Passing an owner-tagged
  // ClockRef lets the owning VM cancel in-flight completions on destruction.
  EmulatedBlockDevice(storage::BlockStore* store, IrqLine irq, ClockRef clock,
                      const CostModel& costs = CostModel::Default())
      : store_(store), irq_(irq), clock_(clock), costs_(costs), buffer_(kMaxSectorsPerCmd * 512) {}

  std::string_view name() const override { return "emu-blk"; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override;
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override;
  void Reset(const DirectPhase& ph) override;

  void Serialize(ByteWriter& w) const override;
  Status Deserialize(const DirectPhase& ph, ByteReader& r) override;

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t sectors = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void StartCommand(const Phase& ph, uint32_t cmd);
  void CompleteCommand(const Phase& ph, uint32_t cmd);

  storage::BlockStore* store_;
  IrqLine irq_;
  ClockRef clock_;
  const CostModel& costs_;

  uint32_t lba_ = 0;
  uint32_t count_ = 1;
  bool busy_ = false;
  bool data_ready_ = false;
  bool error_ = false;
  uint32_t data_ptr_ = 0;
  std::vector<uint8_t> buffer_;
  Stats stats_;
};

}  // namespace hyperion::devices

#endif  // SRC_DEVICES_EMULATED_BLK_H_
