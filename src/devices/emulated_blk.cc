#include "src/devices/emulated_blk.h"

#include <cstring>

namespace hyperion::devices {

Result<uint32_t> EmulatedBlockDevice::Read(uint32_t offset, uint32_t size) {
  if (size != 4) {
    return InvalidArgumentError("blk registers are word-only");
  }
  switch (offset) {
    case 0x00:
      return lba_;
    case 0x04:
      return count_;
    case 0x0C:
      return static_cast<uint32_t>((busy_ ? 1 : 0) | (data_ready_ ? 2 : 0) | (error_ ? 4 : 0));
    case 0x10: {
      if (busy_ || data_ptr_ + 4 > count_ * 512) {
        return FailedPreconditionError("data port read outside a transfer");
      }
      uint32_t v;
      std::memcpy(&v, buffer_.data() + data_ptr_, 4);
      data_ptr_ += 4;
      return v;
    }
    default:
      return NotFoundError("bad blk register");
  }
}

Status EmulatedBlockDevice::Write(const Phase& ph, uint32_t offset, uint32_t size,
                                  uint32_t value) {
  if (size != 4) {
    return InvalidArgumentError("blk registers are word-only");
  }
  switch (offset) {
    case 0x00:
      lba_ = value;
      return OkStatus();
    case 0x04:
      if (value == 0 || value > kMaxSectorsPerCmd) {
        return InvalidArgumentError("bad sector count");
      }
      count_ = value;
      return OkStatus();
    case 0x08:
      if (busy_) {
        return FailedPreconditionError("command while busy");
      }
      if (value != 1 && value != 2) {
        error_ = true;
        return OkStatus();
      }
      StartCommand(ph, value);
      return OkStatus();
    case 0x10: {
      if (busy_ || data_ptr_ + 4 > count_ * 512) {
        return FailedPreconditionError("data port write outside a transfer");
      }
      std::memcpy(buffer_.data() + data_ptr_, &value, 4);
      data_ptr_ += 4;
      return OkStatus();
    }
    case 0x14:
      data_ready_ = false;
      error_ = false;
      data_ptr_ = 0;
      return OkStatus();
    default:
      return NotFoundError("bad blk register");
  }
}

void EmulatedBlockDevice::StartCommand(const Phase& ph, uint32_t cmd) {
  busy_ = true;
  error_ = false;
  data_ptr_ = 0;
  if (clock_.valid()) {
    clock_.ScheduleAfter(ph, static_cast<SimTime>(count_) * costs_.blk_sector_cost,
                         [this, cmd](const SerialPhase& sp) { CompleteCommand(sp, cmd); });
  } else {
    CompleteCommand(ph, cmd);
  }
}

void EmulatedBlockDevice::CompleteCommand(const Phase& ph, uint32_t cmd) {
  Status st;
  if (cmd == 1) {
    st = store_->ReadSectors(lba_, count_, buffer_.data());
    ++stats_.reads;
  } else {
    st = store_->WriteSectors(lba_, count_, buffer_.data());
    ++stats_.writes;
  }
  stats_.sectors += count_;
  busy_ = false;
  error_ = !st.ok();
  data_ready_ = st.ok();
  irq_.Assert(ph);
}

void EmulatedBlockDevice::Reset(const DirectPhase&) {
  lba_ = 0;
  count_ = 1;
  busy_ = data_ready_ = error_ = false;
  data_ptr_ = 0;
}

void EmulatedBlockDevice::Serialize(ByteWriter& w) const {
  w.WriteU32(lba_);
  w.WriteU32(count_);
  w.WriteU8(static_cast<uint8_t>((busy_ ? 1 : 0) | (data_ready_ ? 2 : 0) | (error_ ? 4 : 0)));
  w.WriteU32(data_ptr_);
  w.WriteBlob(buffer_);
}

Status EmulatedBlockDevice::Deserialize(const DirectPhase&, ByteReader& r) {
  HYP_ASSIGN_OR_RETURN(lba_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(count_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
  busy_ = flags & 1;
  data_ready_ = flags & 2;
  error_ = flags & 4;
  HYP_ASSIGN_OR_RETURN(data_ptr_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(buffer_, r.ReadBlob());
  if (buffer_.size() != kMaxSectorsPerCmd * 512) {
    return DataLossError("blk buffer size mismatch");
  }
  return OkStatus();
}

}  // namespace hyperion::devices
