// Fully emulated programmed-I/O network device.
//
// Like the emulated block device, every byte of every frame crosses the DATA
// port one word at a time — the per-frame exit count scales with frame size.
//
// Register map (word access):
//   0x00 TX_LEN (RW) payload length for the next SEND
//   0x04 TX_DST (RW) destination address
//   0x08 CMD    (WO) 1 = SEND tx buffer, 2 = POP next rx frame into buffer
//   0x0C STATUS (RO) bit0 rx available, bit1 rx frame latched
//   0x10 DATA   (RW) auto-incrementing word window (writes: tx, reads: rx)
//   0x14 RX_LEN (RO) length of the latched rx frame
//   0x18 RX_SRC (RO) source address of the latched rx frame
//   0x1C PTRRST (WO) rewind the data pointer

#ifndef SRC_DEVICES_EMULATED_NET_H_
#define SRC_DEVICES_EMULATED_NET_H_

#include <deque>

#include "src/devices/pic.h"
#include "src/net/network.h"

namespace hyperion::devices {

class EmulatedNetDevice final : public MmioDevice, public net::FrameSink {
 public:
  static constexpr size_t kBufBytes = 4096;

  EmulatedNetDevice(net::VirtualSwitch* vswitch, net::MacAddr addr, IrqLine irq)
      : switch_(vswitch), addr_(addr), irq_(irq), tx_(kBufBytes), rx_buf_(kBufBytes) {}

  net::MacAddr addr() const { return addr_; }

  std::string_view name() const override { return "emu-net"; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override;
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override;
  void Reset(const DirectPhase& ph) override;

  // net::FrameSink
  void OnFrame(const SerialPhase& ph, const net::Frame& frame) override;

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_dropped = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t rx_queue_depth() const { return rx_queue_.size(); }

 private:
  net::VirtualSwitch* switch_;
  net::MacAddr addr_;
  IrqLine irq_;

  uint32_t tx_len_ = 0;
  uint32_t tx_dst_ = 0;
  std::vector<uint8_t> tx_;
  uint32_t data_ptr_ = 0;

  std::deque<net::Frame> rx_queue_;
  net::Frame rx_latched_;
  bool rx_valid_ = false;
  std::vector<uint8_t> rx_buf_;
  Stats stats_;
};

}  // namespace hyperion::devices

#endif  // SRC_DEVICES_EMULATED_NET_H_
