// UART console device.
//
// Register map (word access):
//   0x00 TX     (WO) transmit one byte (low 8 bits)
//   0x04 RX     (RO) pop one received byte; 0 when empty
//   0x08 STATUS (RO) bit0 = rx available, bit1 = tx ready (always set)
//   0x0C IRQEN  (RW) bit0 = raise the UART line on rx availability

#ifndef SRC_DEVICES_UART_H_
#define SRC_DEVICES_UART_H_

#include <deque>
#include <string>

#include "src/devices/pic.h"

namespace hyperion::devices {

class Uart final : public MmioDevice {
 public:
  explicit Uart(IrqLine irq = IrqLine()) : irq_(irq) {}

  std::string_view name() const override { return "uart"; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override;
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override;
  void Reset(const DirectPhase& ph) override;

  void Serialize(ByteWriter& w) const override;
  Status Deserialize(const DirectPhase& ph, ByteReader& r) override;

  // Host side: everything the guest has transmitted.
  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  // Host side: feed input to the guest (may raise the rx interrupt line).
  void InjectInput(const Phase& ph, std::string_view text);

 private:
  IrqLine irq_;
  std::string output_;
  std::deque<uint8_t> rx_;
  bool rx_irq_enabled_ = false;
};

}  // namespace hyperion::devices

#endif  // SRC_DEVICES_UART_H_
