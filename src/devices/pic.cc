#include "src/devices/pic.h"

#include <bit>

namespace hyperion::devices {

void InterruptController::Assert(const Phase& ph, uint8_t line) {
  pending_ |= 1u << line;
  UpdateLevel(ph);
}

void InterruptController::RaiseIpi(const DirectPhase& ph, uint32_t targets) {
  uint32_t before = ipi_pending_;
  ipi_pending_ |= targets;
  UpdateIpiLevels(ph, before);
}

Result<uint32_t> InterruptController::Read(uint32_t offset, uint32_t size) {
  if (size != 4) {
    return InvalidArgumentError("pic registers are word-only");
  }
  switch (offset) {
    case 0x00:
      return pending_;
    case 0x04:
      return enable_;
    case 0x10: {
      uint32_t active = pending_ & enable_;
      return active == 0 ? 0xFFFFFFFFu : static_cast<uint32_t>(std::countr_zero(active));
    }
    case 0x18:
      return ipi_pending_;
    default:
      return NotFoundError("bad pic register");
  }
}

Status InterruptController::Write(const Phase& ph, uint32_t offset, uint32_t size,
                                  uint32_t value) {
  if (size != 4) {
    return InvalidArgumentError("pic registers are word-only");
  }
  switch (offset) {
    case 0x04:
      enable_ = value;
      break;
    case 0x08:
      pending_ &= ~value;
      break;
    case 0x0C:
      pending_ |= value;
      break;
    case 0x14:
    case 0x1C: {
      uint32_t before = ipi_pending_;
      if (offset == 0x14) {
        ipi_pending_ |= value;
      } else {
        ipi_pending_ &= ~value;
      }
      UpdateIpiLevels(ph, before);
      return OkStatus();
    }
    default:
      return NotFoundError("bad pic register");
  }
  UpdateLevel(ph);
  return OkStatus();
}

void InterruptController::Reset(const DirectPhase& ph) {
  pending_ = 0;
  enable_ = 0;
  uint32_t before = ipi_pending_;
  ipi_pending_ = 0;
  UpdateLevel(ph);
  UpdateIpiLevels(ph, before);
}

void InterruptController::UpdateLevel(const Phase& ph) {
  if (sink_) {
    sink_(ph, (pending_ & enable_) != 0);
  }
}

void InterruptController::UpdateIpiLevels(const Phase& ph, uint32_t before) {
  if (!ipi_sink_) {
    return;
  }
  uint32_t changed = before ^ ipi_pending_;
  while (changed != 0) {
    uint32_t vcpu = static_cast<uint32_t>(std::countr_zero(changed));
    changed &= changed - 1;
    ipi_sink_(ph, vcpu, (ipi_pending_ >> vcpu) & 1u);
  }
}

void InterruptController::Serialize(ByteWriter& w) const {
  w.WriteU32(pending_);
  w.WriteU32(enable_);
  w.WriteU32(ipi_pending_);
}

Status InterruptController::Deserialize(const DirectPhase& ph, ByteReader& r) {
  HYP_ASSIGN_OR_RETURN(pending_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(enable_, r.ReadU32());
  uint32_t before = ipi_pending_;
  HYP_ASSIGN_OR_RETURN(ipi_pending_, r.ReadU32());
  UpdateLevel(ph);
  // Re-fire every doorbell whose level differs from the pre-restore state so
  // a VM restored mid-shootdown re-raises (or clears) each sibling's
  // software-interrupt line; no vCPU is left spinning on a dead ack.
  UpdateIpiLevels(ph, before);
  return OkStatus();
}

}  // namespace hyperion::devices
