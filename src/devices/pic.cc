#include "src/devices/pic.h"

#include <bit>

namespace hyperion::devices {

void InterruptController::Assert(const Phase& ph, uint8_t line) {
  pending_ |= 1u << line;
  UpdateLevel(ph);
}

Result<uint32_t> InterruptController::Read(uint32_t offset, uint32_t size) {
  if (size != 4) {
    return InvalidArgumentError("pic registers are word-only");
  }
  switch (offset) {
    case 0x00:
      return pending_;
    case 0x04:
      return enable_;
    case 0x10: {
      uint32_t active = pending_ & enable_;
      return active == 0 ? 0xFFFFFFFFu : static_cast<uint32_t>(std::countr_zero(active));
    }
    default:
      return NotFoundError("bad pic register");
  }
}

Status InterruptController::Write(const Phase& ph, uint32_t offset, uint32_t size,
                                  uint32_t value) {
  if (size != 4) {
    return InvalidArgumentError("pic registers are word-only");
  }
  switch (offset) {
    case 0x04:
      enable_ = value;
      break;
    case 0x08:
      pending_ &= ~value;
      break;
    case 0x0C:
      pending_ |= value;
      break;
    default:
      return NotFoundError("bad pic register");
  }
  UpdateLevel(ph);
  return OkStatus();
}

void InterruptController::Reset(const DirectPhase& ph) {
  pending_ = 0;
  enable_ = 0;
  UpdateLevel(ph);
}

void InterruptController::UpdateLevel(const Phase& ph) {
  if (sink_) {
    sink_(ph, (pending_ & enable_) != 0);
  }
}

void InterruptController::Serialize(ByteWriter& w) const {
  w.WriteU32(pending_);
  w.WriteU32(enable_);
}

Status InterruptController::Deserialize(const DirectPhase& ph, ByteReader& r) {
  HYP_ASSIGN_OR_RETURN(pending_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(enable_, r.ReadU32());
  UpdateLevel(ph);
  return OkStatus();
}

}  // namespace hyperion::devices
