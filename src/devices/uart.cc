#include "src/devices/uart.h"

namespace hyperion::devices {

Result<uint32_t> Uart::Read(uint32_t offset, uint32_t size) {
  (void)size;  // byte and word reads behave identically on these registers
  switch (offset) {
    case 0x04: {
      if (rx_.empty()) {
        return uint32_t{0};
      }
      uint32_t b = rx_.front();
      rx_.pop_front();
      return b;
    }
    case 0x08:
      return static_cast<uint32_t>((rx_.empty() ? 0 : 1) | 2);
    case 0x0C:
      return static_cast<uint32_t>(rx_irq_enabled_ ? 1 : 0);
    default:
      return NotFoundError("bad uart register");
  }
}

Status Uart::Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) {
  (void)size;
  (void)ph;  // uart writes have no cross-VM side effects
  switch (offset) {
    case 0x00:
      output_.push_back(static_cast<char>(value & 0xFF));
      return OkStatus();
    case 0x0C:
      rx_irq_enabled_ = (value & 1) != 0;
      return OkStatus();
    default:
      return NotFoundError("bad uart register");
  }
}

void Uart::Reset(const DirectPhase&) {
  rx_.clear();
  rx_irq_enabled_ = false;
}

void Uart::InjectInput(const Phase& ph, std::string_view text) {
  for (char c : text) {
    rx_.push_back(static_cast<uint8_t>(c));
  }
  if (rx_irq_enabled_ && !rx_.empty()) {
    irq_.Assert(ph);
  }
}

void Uart::Serialize(ByteWriter& w) const {
  w.WriteString(output_);
  w.WriteU32(static_cast<uint32_t>(rx_.size()));
  for (uint8_t b : rx_) {
    w.WriteU8(b);
  }
  w.WriteU8(rx_irq_enabled_ ? 1 : 0);
}

Status Uart::Deserialize(const DirectPhase&, ByteReader& r) {
  HYP_ASSIGN_OR_RETURN(output_, r.ReadString());
  HYP_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  rx_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    HYP_ASSIGN_OR_RETURN(uint8_t b, r.ReadU8());
    rx_.push_back(b);
  }
  HYP_ASSIGN_OR_RETURN(uint8_t en, r.ReadU8());
  rx_irq_enabled_ = en != 0;
  return OkStatus();
}

}  // namespace hyperion::devices
