// MMIO device plumbing: the device interface, the bus that dispatches CPU
// accesses to devices, and the guest-physical layout of device windows.

#ifndef SRC_DEVICES_MMIO_H_
#define SRC_DEVICES_MMIO_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/cpu/context.h"
#include "src/util/byte_stream.h"
#include "src/util/status.h"

namespace hyperion::devices {

// Guest-physical layout of the MMIO window.
inline constexpr uint32_t kUartBase = 0xF0000000u;
inline constexpr uint32_t kPicBase = 0xF0001000u;
inline constexpr uint32_t kBlkBase = 0xF0010000u;
inline constexpr uint32_t kNetBase = 0xF0020000u;
inline constexpr uint32_t kVirtioBase = 0xF0100000u;  // + slot * kVirtioStride
inline constexpr uint32_t kVirtioStride = 0x1000u;
inline constexpr uint32_t kDeviceWindow = 0x1000u;

// Interrupt line assignments on the platform interrupt controller.
inline constexpr uint8_t kUartIrq = 0;
inline constexpr uint8_t kBlkIrq = 1;
inline constexpr uint8_t kNetIrq = 2;
inline constexpr uint8_t kVirtioIrqBase = 8;  // + slot

// A memory-mapped device. Offsets are relative to the device's base; sizes
// are 1, 2 or 4 bytes. Devices are register-oriented: sub-word accesses are
// legal only where a device says so (most registers are word-only).
//
// Write carries the caller's phase token (doorbells raise interrupts and
// schedule completions, which must stage from a slice). Reset and
// Deserialize happen only between rounds — snapshot restore, init — so they
// demand a direct token.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  virtual std::string_view name() const = 0;
  virtual Result<uint32_t> Read(uint32_t offset, uint32_t size) = 0;
  virtual Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) = 0;
  virtual void Reset(const DirectPhase& ph) { (void)ph; }

  // Snapshot hooks: serialize register state (not backing storage — disk
  // contents snapshot separately via HVD overlays).
  virtual void Serialize(ByteWriter& w) const { (void)w; }
  virtual Status Deserialize(const DirectPhase& ph, ByteReader& r) {
    (void)ph;
    (void)r;
    return OkStatus();
  }
};

// Routes CPU MMIO accesses to mapped devices. Unmapped accesses return
// NOT_FOUND, which the CPU surfaces to the guest as a bus fault.
class MmioBus final : public cpu::MmioHandler {
 public:
  Status Map(uint32_t base, uint32_t size, MmioDevice* device);

  Result<uint32_t> MmioRead(uint32_t gpa, uint32_t size) override;
  Status MmioWrite(const Phase& ph, uint32_t gpa, uint32_t size, uint32_t value) override;

  // Devices in mapping order (used by snapshot to serialize device state).
  const std::vector<MmioDevice*>& devices() const { return device_list_; }

 private:
  struct Region {
    uint32_t base;
    uint32_t size;
    MmioDevice* device;
  };

  MmioDevice* Find(uint32_t gpa, uint32_t* offset);

  std::vector<Region> regions_;
  std::vector<MmioDevice*> device_list_;
};

}  // namespace hyperion::devices

#endif  // SRC_DEVICES_MMIO_H_
