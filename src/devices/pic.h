// Platform interrupt controller.
//
// Devices assert numbered lines; the PIC latches them into PENDING and
// drives the vCPU's external-interrupt input whenever (PENDING & ENABLE)
// is nonzero. The guest claims the lowest pending enabled line via CLAIM
// and acknowledges with a write-1-to-clear ACK.
//
// Register map (word access):
//   0x00 PENDING (RO)   latched lines
//   0x04 ENABLE  (RW)   per-line mask
//   0x08 ACK     (W1C)  clear pending bits
//   0x0C RAISE   (WO)   software-set pending bits (tests)
//   0x10 CLAIM   (RO)   lowest pending&enabled line, 0xFFFFFFFF if none
//
// Inter-processor interrupts use a separate per-vCPU doorbell bank: each bit
// of IPI_PENDING belongs to one vCPU and drives that vCPU's software-
// interrupt input as a level. Raising an already-pending bit coalesces (no
// new edge); the target clears its own bit once the IPI is handled.
//
//   0x14 IPI_RAISE   (WO)   bitmask of target vCPUs to interrupt
//   0x18 IPI_PENDING (RO)   per-vCPU doorbell bits
//   0x1C IPI_ACK     (W1C)  clear doorbell bits (targets write 1 << hartid)

#ifndef SRC_DEVICES_PIC_H_
#define SRC_DEVICES_PIC_H_

#include <functional>

#include "src/devices/mmio.h"

namespace hyperion::devices {

class InterruptController final : public MmioDevice {
 public:
  // `sink` is invoked with the level of the external-interrupt output
  // whenever it may have changed (the VMM wires it to the vCPU's IPEND bit).
  // It receives the phase of the access that moved the level so downstream
  // effects (vCPU wakes) stage or act accordingly.
  using LevelSink = std::function<void(const Phase& ph, bool level)>;

  // `ipi_sink` is invoked once per vCPU whose doorbell level changed (the VMM
  // wires it to that vCPU's software-interrupt IPEND bit). Coalesced raises
  // (bit already pending) produce no call.
  using IpiSink = std::function<void(const Phase& ph, uint32_t vcpu, bool level)>;

  void SetSink(LevelSink sink) { sink_ = std::move(sink); }
  void SetIpiSink(IpiSink sink) { ipi_sink_ = std::move(sink); }

  // Device-side line assertion (edge-latched into PENDING).
  void Assert(const Phase& ph, uint8_t line);

  // VMM-side IPI injection (equivalent to a guest IPI_RAISE write). Demands
  // a direct-phase token: host-side code may ring doorbells only from the
  // serial regimes (setup, clock callbacks, restore, commit). Guest raises
  // arrive through Write() on the owning VM's execute lane instead; nothing
  // running on a worker lane can deliver an IPI to another VM's PIC.
  void RaiseIpi(const DirectPhase& ph, uint32_t targets);

  std::string_view name() const override { return "pic"; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override;
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override;
  void Reset(const DirectPhase& ph) override;

  void Serialize(ByteWriter& w) const override;
  Status Deserialize(const DirectPhase& ph, ByteReader& r) override;

  uint32_t pending() const { return pending_; }
  uint32_t enable() const { return enable_; }
  uint32_t ipi_pending() const { return ipi_pending_; }

 private:
  void UpdateLevel(const Phase& ph);
  void UpdateIpiLevels(const Phase& ph, uint32_t before);

  uint32_t pending_ = 0;
  uint32_t enable_ = 0;
  uint32_t ipi_pending_ = 0;
  LevelSink sink_;
  IpiSink ipi_sink_;
};

// A device's handle to one PIC line.
class IrqLine {
 public:
  IrqLine() = default;
  IrqLine(InterruptController* pic, uint8_t line) : pic_(pic), line_(line) {}

  void Assert(const Phase& ph) {
    if (pic_ != nullptr) {
      pic_->Assert(ph, line_);
    }
  }

 private:
  InterruptController* pic_ = nullptr;
  uint8_t line_ = 0;
};

}  // namespace hyperion::devices

#endif  // SRC_DEVICES_PIC_H_
