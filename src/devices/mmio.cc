#include "src/devices/mmio.h"

namespace hyperion::devices {

Status MmioBus::Map(uint32_t base, uint32_t size, MmioDevice* device) {
  for (const Region& r : regions_) {
    if (base < r.base + r.size && r.base < base + size) {
      return AlreadyExistsError("MMIO region overlaps " + std::string(r.device->name()));
    }
  }
  regions_.push_back({base, size, device});
  device_list_.push_back(device);
  return OkStatus();
}

MmioDevice* MmioBus::Find(uint32_t gpa, uint32_t* offset) {
  for (const Region& r : regions_) {
    if (gpa >= r.base && gpa < r.base + r.size) {
      *offset = gpa - r.base;
      return r.device;
    }
  }
  return nullptr;
}

Result<uint32_t> MmioBus::MmioRead(uint32_t gpa, uint32_t size) {
  uint32_t offset = 0;
  MmioDevice* dev = Find(gpa, &offset);
  if (dev == nullptr) {
    return NotFoundError("no device at gpa");
  }
  return dev->Read(offset, size);
}

Status MmioBus::MmioWrite(const Phase& ph, uint32_t gpa, uint32_t size, uint32_t value) {
  uint32_t offset = 0;
  MmioDevice* dev = Find(gpa, &offset);
  if (dev == nullptr) {
    return NotFoundError("no device at gpa");
  }
  return dev->Write(ph, offset, size, value);
}

}  // namespace hyperion::devices
