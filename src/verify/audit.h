// Runtime invariant auditors: cross-layer consistency checks over a live VM.
//
// Each auditor re-derives one piece of cached or duplicated state from the
// authoritative source and reports every disagreement:
//
//   * MMU coherence — the TLB (and, under shadow paging, the shadow roots)
//     against a side-effect-free walk of the guest page tables and the
//     host-side page flags (presence, KSM sharing, write protection).
//   * Frame accounting — FramePool refcounts against the union of guest
//     page mappings (KSM share counts must add up exactly).
//   * Virtqueue sanity — ring geometry, avail/used index ordering, and
//     descriptor chains (bounds, loops) of every ready queue.
//
// The auditors never mutate state, so they can run at any trap boundary.
// They are debug machinery gated behind the HYPERION_AUDIT environment
// variable (any value but "0" enables them); the VMM run loop calls them at
// slice boundaries and crashes the VM on the first violation, and tests may
// invoke them directly via SetAuditEnabled().

#ifndef SRC_VERIFY_AUDIT_H_
#define SRC_VERIFY_AUDIT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/virtualizer.h"
#include "src/virtio/virtio.h"

namespace hyperion::verify {

// True when auditing is switched on, either via HYPERION_AUDIT in the
// environment or programmatically. Cheap enough to call per slice.
bool AuditEnabled();
// Overrides the environment (tests). Passing the gate back to the
// environment is not supported; the override sticks for the process.
void SetAuditEnabled(bool enabled);

struct AuditReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Checks the cached translations the virtualizer holds for `vcpu` against
// the current guest paging state (`paging`/`ptbr` from that vCPU's
// STATUS/PTBR CSRs). For an SMP guest the caller audits each sibling in
// turn, each under its own CSR state.
void AuditMmuCoherence(const mmu::MemoryVirtualizer& virt, bool paging,
                       uint32_t ptbr, AuditReport* report, uint32_t vcpu = 0);

// Checks pool refcounts against the mappings of every address space using
// the pool. `spaces` must be complete: a missing space shows up as a leaked
// reference.
void AuditFrameAccounting(const mem::FramePool& pool,
                          const std::vector<const mem::GuestMemory*>& spaces,
                          AuditReport* report);

// Checks one virtqueue's rings as they sit in guest memory. `label`
// prefixes violation messages (e.g. "vblk q0").
void AuditVirtQueue(const virtio::VirtQueue& queue,
                    const mem::GuestMemory& memory, std::string_view label,
                    AuditReport* report);

// Audits every queue of a virtio device.
void AuditVirtioDevice(const virtio::VirtioDevice& device,
                       const mem::GuestMemory& memory, std::string_view label,
                       AuditReport* report);

}  // namespace hyperion::verify

#endif  // SRC_VERIFY_AUDIT_H_
