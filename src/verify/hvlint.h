// hvlint: a static verifier for assembled HV32 guest images.
//
// Inspired by the eBPF verifier, hvlint admits or rejects an image *before*
// it is loaded into a VM. It discovers the control-flow graph from the
// image's entry points (the `_start` convention plus the `.entry` side table
// emitted by the assembler), decodes every reachable instruction, and checks
// a rule set over all paths using a small abstract interpreter that tracks
// per-register constants and the stack-pointer offset:
//
//   illegal-encoding      reachable word decodes to no valid instruction
//   jump-out-of-range     branch/jump target outside the image (or misaligned)
//   fallthrough-off-image execution can fall off the end of the image
//   r0-write              ALU/load result discarded into the hardwired zero
//                         register (always a bug; canonical `nop` is exempt)
//   privileged-in-user    CSR access or privileged opcode (sret/wfi/sfence/
//                         hcall/halt) reachable from a user-mode entry point
//   mmio-out-of-window    statically known device access outside the
//                         platform's mapped MMIO windows
//   misaligned-access     statically known load/store address not aligned to
//                         the access size (traps at runtime)
//   sp-imbalance          call/return or trap-handler path changes the net
//                         stack-pointer offset
//   write-to-readonly-csr csrrw (or csrrs/csrrc with a provably nonzero
//                         mask) targets a CSR the core ignores writes to
//                         (time/cycle/instret/hartid/ipend)
//   wfi-without-enabled-interrupts  (warning) wfi reachable from a cold
//                         entry with STATUS.IE provably 0 and TIMECMP
//                         provably unarmed: no self-wake source exists, so
//                         the vCPU parks until woken externally
//
// The analysis is conservative in the accepting direction: a rule only fires
// on facts it can prove (e.g. an MMIO address is checked only when the base
// register holds a known constant), so rejected images are genuinely broken
// while dynamic code the analysis cannot follow is admitted unchecked.

#ifndef SRC_VERIFY_HVLINT_H_
#define SRC_VERIFY_HVLINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/asm/assembler.h"
#include "src/util/status.h"

namespace hyperion::verify {

enum class Severity : uint8_t { kWarning = 0, kError = 1 };

std::string_view SeverityName(Severity severity);

// One finding, anchored to the guest-physical address of the offending word.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;     // stable rule identifier, e.g. "illegal-encoding"
  uint32_t pc = 0;
  std::string message;

  // "0x1010: error[r0-write]: add result discarded into zero register".
  std::string ToString() const;
};

struct LintOptions {
  bool check_sp = true;     // stack-pointer discipline on call/return paths
  bool check_mmio = true;   // wild device accesses
  // Virtio windows the platform maps (kVirtioBase + slot * stride).
  uint32_t max_virtio_slots = 8;
  // Safety valve for the abstract interpreter (well above any real guest).
  size_t max_steps = 1u << 20;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  // Distinct instruction words reached from the entry points.
  uint32_t reachable_instructions = 0;

  size_t errors() const;
  bool ok() const { return errors() == 0; }
  std::string ToString() const;
};

// Verifies `image`. Never fails outright: malformed input shows up as
// diagnostics in the report.
LintReport LintImage(const assembler::Image& image, const LintOptions& options = {});

// Admission gate: OkStatus() when the image passes, otherwise
// InvalidArgument carrying the rendered report.
Status VerifyImage(const assembler::Image& image, const LintOptions& options = {});

}  // namespace hyperion::verify

#endif  // SRC_VERIFY_HVLINT_H_
