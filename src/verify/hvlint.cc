#include "src/verify/hvlint.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/devices/mmio.h"
#include "src/isa/hv32.h"

namespace hyperion::verify {
namespace {

using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------------

// Per-register constant lattice: unvisited (bottom) < known constant < unknown
// (top). `nullopt` is top; bottom exists only implicitly (pcs not yet in the
// join map). The stack pointer additionally carries a symbolic
// "function entry + delta" shape so balance is checkable even though the
// absolute stack base is unknown.
struct AbsState {
  std::array<std::optional<uint32_t>, isa::kNumGprs> reg;
  bool sp_rel = false;    // sp == (sp at function entry) + sp_delta
  int32_t sp_delta = 0;   // meaningful only when sp_rel

  // Wake-source tracking for the wfi rule, tri-state: -1 unknown, 0 provably
  // off, 1 provably on. Both start provably off only at cold (reset) entry
  // points, where the architecture guarantees STATUS == 0 and TIMECMP == 0.
  int8_t ie = -1;           // STATUS.IE
  int8_t timer_armed = -1;  // TIMECMP nonzero

  bool operator==(const AbsState&) const = default;
};

// Tri-state meet: agreement survives, disagreement degrades to unknown.
bool MeetTri(int8_t& into, int8_t from) {
  if (into != -1 && from != into) {
    into = -1;
    return true;
  }
  return false;
}

AbsState FunctionEntryState() {
  AbsState s;
  s.reg[isa::kZero] = 0;
  s.sp_rel = true;
  s.sp_delta = 0;
  return s;
}

// Lattice meet at control-flow joins: agreeing constants survive, anything
// else degrades to unknown. Returns true when `into` changed.
bool MeetInto(AbsState& into, const AbsState& from) {
  bool changed = false;
  for (int r = 1; r < isa::kNumGprs; ++r) {
    if (into.reg[r].has_value() &&
        (!from.reg[r].has_value() || *from.reg[r] != *into.reg[r])) {
      into.reg[r].reset();
      changed = true;
    }
  }
  if (into.sp_rel && (!from.sp_rel || from.sp_delta != into.sp_delta)) {
    into.sp_rel = false;
    changed = true;
  }
  changed |= MeetTri(into.ie, from.ie);
  changed |= MeetTri(into.timer_armed, from.timer_armed);
  return changed;
}

// Mirror of the execution core's ALU so constant propagation matches runtime
// behaviour exactly (shift masking, division edge cases).
uint32_t FoldAlu(isa::AluOp op, uint32_t a, uint32_t b) {
  using isa::AluOp;
  switch (op) {
    case AluOp::kAdd: return a + b;
    case AluOp::kSub: return a - b;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kSll: return a << (b & 31);
    case AluOp::kSrl: return a >> (b & 31);
    case AluOp::kSra: return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
    case AluOp::kSlt: return static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
    case AluOp::kSltu: return a < b ? 1 : 0;
    case AluOp::kMul: return a * b;
    case AluOp::kMulhu:
      return static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
    case AluOp::kDiv: {
      auto sa = static_cast<int32_t>(a);
      auto sb = static_cast<int32_t>(b);
      if (sb == 0) return UINT32_MAX;
      if (sa == INT32_MIN && sb == -1) return static_cast<uint32_t>(INT32_MIN);
      return static_cast<uint32_t>(sa / sb);
    }
    case AluOp::kDivu: return b == 0 ? UINT32_MAX : a / b;
    case AluOp::kRem: {
      auto sa = static_cast<int32_t>(a);
      auto sb = static_cast<int32_t>(b);
      if (sb == 0) return a;
      if (sa == INT32_MIN && sb == -1) return 0;
      return static_cast<uint32_t>(sa % sb);
    }
    case AluOp::kRemu: return b == 0 ? a : a % b;
  }
  return 0;
}

int AccessSize(Opcode op) {
  switch (op) {
    case Opcode::kLw:
    case Opcode::kSw: return 4;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kSh: return 2;
    default: return 1;
  }
}

bool IsLoad(Opcode op) {
  return op >= Opcode::kLw && op <= Opcode::kLbu;
}
bool IsCsr(Opcode op) {
  return op == Opcode::kCsrrw || op == Opcode::kCsrrs || op == Opcode::kCsrrc;
}

// CSRs whose writes the execution core silently ignores (exec_core.h
// WriteCsr); a guest storing to one always indicates a bug.
bool IsReadOnlyCsr(isa::Csr csr) {
  switch (csr) {
    case isa::Csr::kTime:
    case isa::Csr::kCycle:
    case isa::Csr::kInstret:
    case isa::Csr::kHartid:
    case isa::Csr::kIpend:
      return true;
    default:
      return false;
  }
}

std::string Hex(uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

// One control-flow discovery root: a declared entry point, a call target, a
// trap vector installed via `csrw tvec`, or a secondary-vCPU entry passed to
// the kStartVcpu hypercall. Each root is analysed as its own function with a
// fresh sp epoch.
struct Root {
  uint32_t pc = 0;
  isa::PrivMode priv = isa::PrivMode::kSupervisor;
  // Cold roots start in the architectural reset state (STATUS == 0,
  // TIMECMP == 0): the image entry, declared `.entry` points, and secondary
  // vCPUs started via kStartVcpu. Call targets and trap vectors are warm —
  // their CSR state is whatever the caller left behind. Not part of the
  // dedup key: a pc analysed cold subsumes the warm analysis only in the
  // unsound direction, so first-queued wins and duplicates are dropped.
  bool cold = false;

  bool operator<(const Root& o) const {
    return pc != o.pc ? pc < o.pc : priv < o.priv;
  }
};

class Linter {
 public:
  Linter(const assembler::Image& image, const LintOptions& options)
      : image_(image), options_(options) {}

  LintReport Run() {
    std::set<Root> queued;
    auto add_root = [&](uint32_t pc, isa::PrivMode priv, bool cold) {
      if (queued.insert({pc, priv}).second) {
        pending_roots_.push_back({pc, priv, cold});
      }
    };

    add_root(image_.entry(), isa::PrivMode::kSupervisor, /*cold=*/true);
    for (const assembler::EntryPoint& e : image_.entry_points) {
      add_root(e.addr, e.priv, /*cold=*/true);
    }
    discovered_ = add_root;

    while (!pending_roots_.empty() && steps_ < options_.max_steps) {
      Root root = pending_roots_.front();
      pending_roots_.pop_front();
      AnalyzeFunction(root);
    }
    if (steps_ >= options_.max_steps) {
      Diag(Severity::kWarning, "analysis-limit", image_.entry(),
           "abstract interpretation step budget exhausted; image only "
           "partially verified");
    }

    report_.reachable_instructions = static_cast<uint32_t>(reachable_.size());
    std::sort(report_.diagnostics.begin(), report_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.pc != b.pc ? a.pc < b.pc : a.rule < b.rule;
              });
    return std::move(report_);
  }

 private:
  // Valid instruction start: inside the image, word-sized slot available.
  bool InImage(uint32_t pc) const {
    uint32_t end = image_.base + static_cast<uint32_t>(image_.bytes.size());
    return pc >= image_.base && pc + isa::kInstrBytes <= end &&
           (pc - image_.base) % isa::kInstrBytes == 0;
  }

  uint32_t WordAt(uint32_t pc) const {
    size_t off = pc - image_.base;
    return static_cast<uint32_t>(image_.bytes[off]) |
           static_cast<uint32_t>(image_.bytes[off + 1]) << 8 |
           static_cast<uint32_t>(image_.bytes[off + 2]) << 16 |
           static_cast<uint32_t>(image_.bytes[off + 3]) << 24;
  }

  void Diag(Severity sev, std::string_view rule, uint32_t pc, std::string msg) {
    if (!emitted_.insert({std::string(rule), pc}).second) {
      return;  // one finding per (rule, pc) across all roots
    }
    report_.diagnostics.push_back(
        {sev, std::string(rule), pc, std::move(msg)});
  }

  static void SetReg(AbsState& s, uint8_t rd, std::optional<uint32_t> v) {
    if (rd == isa::kZero) {
      return;
    }
    s.reg[rd] = v;
    if (rd == isa::kSp) {
      // A direct write re-bases the stack; the old entry-relative offset is
      // dead. Known constants keep absolute tracking instead.
      s.sp_rel = false;
    }
  }

  // Flags writes whose result lands in the hardwired zero register. The
  // canonical nop (addi zero, zero, 0) and control-flow link discards
  // (j = jal zero, jr/ret = jalr zero) are legitimate encodings.
  void CheckR0Write(const Instruction& in, uint32_t pc) {
    if (in.rd != isa::kZero) {
      return;
    }
    bool is_nop = in.opcode == Opcode::kOpImm &&
                  static_cast<isa::AluOp>(in.funct) == isa::AluOp::kAdd &&
                  in.rs1 == isa::kZero && in.imm == 0;
    if (is_nop) {
      return;
    }
    if (in.opcode == Opcode::kOp || in.opcode == Opcode::kOpImm ||
        in.opcode == Opcode::kLui || in.opcode == Opcode::kAuipc ||
        IsLoad(in.opcode)) {
      Diag(Severity::kError, "r0-write", pc,
           "result of '" + isa::Disassemble(in) +
               "' is discarded into the hardwired zero register");
    }
  }

  void CheckMemAccess(const Instruction& in, const AbsState& s, uint32_t pc) {
    if (!options_.check_mmio || !s.reg[in.rs1].has_value()) {
      return;
    }
    uint32_t addr = *s.reg[in.rs1] + static_cast<uint32_t>(in.imm);
    uint32_t size = static_cast<uint32_t>(AccessSize(in.opcode));
    if (addr % size != 0) {
      Diag(Severity::kError, "misaligned-access", pc,
           "access at " + Hex(addr) + " is not " + std::to_string(size) +
               "-byte aligned and will trap");
      return;
    }
    if (addr < isa::kMmioBase) {
      return;  // RAM; bounds depend on the VM configuration
    }
    struct Window {
      uint32_t base, len;
    };
    const Window windows[] = {
        {devices::kUartBase, devices::kDeviceWindow},
        {devices::kPicBase, devices::kDeviceWindow},
        {devices::kBlkBase, devices::kDeviceWindow},
        {devices::kNetBase, devices::kDeviceWindow},
        {devices::kVirtioBase, options_.max_virtio_slots * devices::kVirtioStride},
    };
    for (const Window& w : windows) {
      if (addr >= w.base && addr + size <= w.base + w.len) {
        return;
      }
    }
    Diag(Severity::kError, "mmio-out-of-window", pc,
         "device access at " + Hex(addr) +
             " is outside every mapped MMIO window");
  }

  void CheckReturnBalance(const AbsState& s, uint32_t pc, std::string_view where) {
    if (options_.check_sp && s.sp_rel && s.sp_delta != 0) {
      Diag(Severity::kError, "sp-imbalance", pc,
           std::string(where) + " with net stack-pointer offset " +
               std::to_string(s.sp_delta) + " (must be 0)");
    }
  }

  // Transfer function and rule set for the three CSR-access opcodes: flags
  // writes to read-only CSRs, discovers trap handlers installed via tvec,
  // and tracks the STATUS.IE / TIMECMP wake sources for the wfi rule.
  void StepCsr(const Instruction& in, AbsState& s, uint32_t pc) {
    const auto csr = static_cast<isa::Csr>(in.imm);
    const bool full_write = in.opcode == Opcode::kCsrrw;
    // csrrs/csrrc through the zero register is the canonical read idiom and
    // writes nothing. An unknown mask register may still hold 0, so the
    // write rule fires only on a full write or a provably nonzero mask.
    const std::optional<uint32_t> mask =
        in.rs1 == isa::kZero ? std::optional<uint32_t>(0) : s.reg[in.rs1];
    const bool has = mask.has_value();
    const bool nz = has && *mask != 0;

    if (IsReadOnlyCsr(csr) && (full_write || nz)) {
      Diag(Severity::kError, "write-to-readonly-csr", pc,
           "'" + isa::Disassemble(in) +
               "' writes a read-only CSR; the core silently ignores the "
               "store, so the guest's value is lost");
    }

    // Installing a trap vector with a known address reveals the handler:
    // verify it as a supervisor root.
    if (full_write && csr == isa::Csr::kTvec && s.reg[in.rs1].has_value()) {
      discovered_(*s.reg[in.rs1], isa::PrivMode::kSupervisor, /*cold=*/false);
    }

    if (csr == isa::Csr::kStatus) {
      const bool bit = has && (*mask & isa::StatusBits::kIe) != 0;
      switch (in.opcode) {
        case Opcode::kCsrrw:
          s.ie = has ? (bit ? 1 : 0) : -1;
          break;
        case Opcode::kCsrrs:  // sets bits: can only turn IE on
          if (bit) {
            s.ie = 1;
          } else if (!has && s.ie != 1) {
            s.ie = -1;
          }
          break;
        case Opcode::kCsrrc:  // clears bits: can only turn IE off
          if (bit) {
            s.ie = 0;
          } else if (!has && s.ie != 0) {
            s.ie = -1;
          }
          break;
        default:
          break;
      }
    } else if (csr == isa::Csr::kTimecmp) {
      switch (in.opcode) {
        case Opcode::kCsrrw:
          s.timer_armed = has ? (nz ? 1 : 0) : -1;
          break;
        case Opcode::kCsrrs:
          if (nz) {
            s.timer_armed = 1;
          } else if (!has && s.timer_armed != 1) {
            s.timer_armed = -1;
          }
          break;
        case Opcode::kCsrrc:
          if ((nz || !has) && s.timer_armed != 0) {
            s.timer_armed = -1;
          }
          break;
        default:
          break;
      }
    }
  }

  // Propagate `out` into `succ`, enqueueing it if the joined state changed.
  // `kind` distinguishes the diagnostic when the successor leaves the image.
  void FlowTo(uint32_t from_pc, uint32_t succ, const AbsState& out, bool is_jump) {
    if (succ % isa::kInstrBytes != 0) {
      Diag(Severity::kError, "jump-out-of-range", from_pc,
           "jump target " + Hex(succ) + " is not instruction-aligned");
      return;
    }
    if (!InImage(succ)) {
      if (is_jump) {
        Diag(Severity::kError, "jump-out-of-range", from_pc,
             "jump target " + Hex(succ) + " is outside the image [" +
                 Hex(image_.base) + ", " +
                 Hex(image_.base + static_cast<uint32_t>(image_.bytes.size())) +
                 ")");
      } else {
        Diag(Severity::kError, "fallthrough-off-image", from_pc,
             "execution falls through to " + Hex(succ) +
                 ", which is outside the image");
      }
      return;
    }
    auto it = joined_->find(succ);
    if (it == joined_->end()) {
      joined_->emplace(succ, out);
      worklist_->push_back(succ);
    } else if (MeetInto(it->second, out)) {
      worklist_->push_back(succ);
    }
  }

  void AnalyzeFunction(const Root& root) {
    std::unordered_map<uint32_t, AbsState> joined;
    std::deque<uint32_t> worklist;
    joined_ = &joined;
    worklist_ = &worklist;

    // The root pc itself flows like a jump target (diagnose bad `.entry`).
    AbsState entry = FunctionEntryState();
    if (root.cold) {
      entry.ie = 0;
      entry.timer_armed = 0;
    }
    FlowTo(root.pc, root.pc, entry, /*is_jump=*/true);

    while (!worklist.empty()) {
      if (++steps_ >= options_.max_steps) {
        return;
      }
      uint32_t pc = worklist.front();
      worklist.pop_front();
      AbsState s = joined.at(pc);
      reachable_.insert(pc);
      Step(root, pc, s);
    }
  }

  // Transfer function for one instruction: applies the rule set, updates the
  // abstract state, and flows it to every successor.
  void Step(const Root& root, uint32_t pc, AbsState s) {
    const Instruction in = isa::Decode(WordAt(pc));
    const bool user = root.priv == isa::PrivMode::kUser;

    if (in.opcode == Opcode::kIllegal) {
      Diag(Severity::kError, "illegal-encoding", pc,
           "word " + Hex(WordAt(pc)) + " does not decode to a valid instruction");
      return;  // execution traps here; no successors
    }
    if (user && (isa::IsPrivileged(in.opcode) || IsCsr(in.opcode))) {
      Diag(Severity::kError, "privileged-in-user", pc,
           "'" + isa::Disassemble(in) +
               "' is supervisor-only but reachable from user-mode entry '" +
               root_name(root) + "'");
      // Keep walking: report every privileged site, not just the first.
    }
    CheckR0Write(in, pc);

    switch (in.opcode) {
      case Opcode::kOp: {
        std::optional<uint32_t> v;
        if (s.reg[in.rs1] && s.reg[in.rs2]) {
          v = FoldAlu(static_cast<isa::AluOp>(in.funct), *s.reg[in.rs1],
                      *s.reg[in.rs2]);
        }
        SetReg(s, in.rd, v);
        break;
      }
      case Opcode::kOpImm: {
        auto op = static_cast<isa::AluOp>(in.funct);
        // `addi sp, sp, imm` with an unknown base adjusts the symbolic
        // entry-relative offset instead of killing it.
        if (op == isa::AluOp::kAdd && in.rd == isa::kSp &&
            in.rs1 == isa::kSp && !s.reg[isa::kSp] && s.sp_rel) {
          s.sp_delta += in.imm;
          break;
        }
        std::optional<uint32_t> v;
        if (s.reg[in.rs1]) {
          v = FoldAlu(op, *s.reg[in.rs1], static_cast<uint32_t>(in.imm));
        }
        SetReg(s, in.rd, v);
        break;
      }
      case Opcode::kLui:
        SetReg(s, in.rd, static_cast<uint32_t>(in.imm));
        break;
      case Opcode::kAuipc:
        SetReg(s, in.rd, pc + static_cast<uint32_t>(in.imm));
        break;

      case Opcode::kJal: {
        uint32_t target = pc + static_cast<uint32_t>(in.imm);
        if (in.rd == isa::kZero) {
          FlowTo(pc, target, s, /*is_jump=*/true);  // plain `j`
          return;
        }
        // A call: the callee becomes its own verification root and the
        // caller resumes with caller-saved state clobbered. Balance of the
        // callee is checked in its own analysis, so sp survives the call.
        if (InImage(target) && target % isa::kInstrBytes == 0) {
          discovered_(target, root.priv, /*cold=*/false);
        } else {
          FlowTo(pc, target, s, /*is_jump=*/true);  // diagnose; no new root
          return;
        }
        ClobberForCall(s);
        FlowTo(pc, pc + isa::kInstrBytes, s, /*is_jump=*/false);
        return;
      }
      case Opcode::kJalr: {
        if (s.reg[in.rs1]) {
          uint32_t target = (*s.reg[in.rs1] + static_cast<uint32_t>(in.imm)) & ~3u;
          if (in.rd == isa::kZero) {
            FlowTo(pc, target, s, /*is_jump=*/true);
            return;
          }
          if (InImage(target)) {
            discovered_(target, root.priv, /*cold=*/false);
          } else {
            FlowTo(pc, target, s, /*is_jump=*/true);
            return;
          }
          ClobberForCall(s);
          FlowTo(pc, pc + isa::kInstrBytes, s, /*is_jump=*/false);
          return;
        }
        if (in.rd == isa::kZero && in.rs1 == isa::kRa) {
          // `ret` through an unknown return address: end of the function.
          CheckReturnBalance(s, pc, "return");
          return;
        }
        if (in.rd != isa::kZero) {
          // Computed call to an unknown target: assume it returns balanced.
          ClobberForCall(s);
          FlowTo(pc, pc + isa::kInstrBytes, s, /*is_jump=*/false);
          return;
        }
        return;  // computed jump we cannot follow; admitted unchecked
      }
      case Opcode::kBranch: {
        FlowTo(pc, pc + static_cast<uint32_t>(in.imm), s, /*is_jump=*/true);
        FlowTo(pc, pc + isa::kInstrBytes, s, /*is_jump=*/false);
        return;
      }

      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu:
        CheckMemAccess(in, s, pc);
        SetReg(s, in.rd, std::nullopt);
        break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb:
        CheckMemAccess(in, s, pc);
        break;

      case Opcode::kCsrrw:
      case Opcode::kCsrrs:
      case Opcode::kCsrrc:
        StepCsr(in, s, pc);
        SetReg(s, in.rd, std::nullopt);
        break;

      case Opcode::kEcall:
      case Opcode::kEbreak:
        // Traps to the guest kernel; resumes here with handler-clobbered
        // registers. The stack pointer is assumed restored by the handler.
        ClobberForCall(s);
        break;

      case Opcode::kHcall:
        // A hypercall that starts a secondary vCPU names its entry pc in a2.
        if (s.reg[isa::kA0] &&
            *s.reg[isa::kA0] == static_cast<uint32_t>(isa::Hypercall::kStartVcpu) &&
            s.reg[isa::kA2].has_value()) {
          discovered_(*s.reg[isa::kA2], isa::PrivMode::kSupervisor, /*cold=*/true);
        }
        SetReg(s, isa::kA0, std::nullopt);  // ABI: result in a0, rest preserved
        break;

      case Opcode::kSret:
        CheckReturnBalance(s, pc, "trap return");
        return;  // target is epc; not statically known
      case Opcode::kHalt:
        return;
      case Opcode::kWfi:
        // Cold path with interrupts globally disabled and no timer armed:
        // this wfi has no self-wake source. It parks until some *external*
        // agent (another vCPU's kWakeVcpu, a device raising a pending bit,
        // the VMM) intervenes — usually a forgotten `csrw timecmp` or
        // STATUS.IE enable. Advisory because parking forever on purpose is
        // a legitimate idiom (e.g. a finished worker loop).
        if (s.ie == 0 && s.timer_armed == 0) {
          Diag(Severity::kWarning, "wfi-without-enabled-interrupts", pc,
               "wfi with interrupts disabled (STATUS.IE = 0) and no timer "
               "armed (TIMECMP = 0): the vCPU can only be woken externally");
        }
        break;
      case Opcode::kSfence:
        break;

      case Opcode::kIllegal:
      default:
        return;
    }
    FlowTo(pc, pc + isa::kInstrBytes, s, /*is_jump=*/false);
  }

  // Register state surviving a call: only the hardwired zero and the stack
  // pointer (whose balance the callee's own analysis enforces).
  static void ClobberForCall(AbsState& s) {
    auto sp = s.reg[isa::kSp];
    bool sp_rel = s.sp_rel;
    int32_t sp_delta = s.sp_delta;
    s = AbsState{};
    s.reg[isa::kZero] = 0;
    s.reg[isa::kSp] = sp;
    s.sp_rel = sp_rel;
    s.sp_delta = sp_delta;
  }

  std::string root_name(const Root& root) const {
    for (const assembler::EntryPoint& e : image_.entry_points) {
      if (e.addr == root.pc && e.priv == root.priv) {
        return e.name;
      }
    }
    return Hex(root.pc);
  }

  const assembler::Image& image_;
  const LintOptions& options_;
  LintReport report_;
  std::set<std::pair<std::string, uint32_t>> emitted_;
  std::set<uint32_t> reachable_;
  std::deque<Root> pending_roots_;
  std::function<void(uint32_t, isa::PrivMode, bool)> discovered_;
  std::unordered_map<uint32_t, AbsState>* joined_ = nullptr;
  std::deque<uint32_t>* worklist_ = nullptr;
  size_t steps_ = 0;
};

}  // namespace

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << "0x" << std::hex << pc << std::dec << ": " << SeverityName(severity)
     << "[" << rule << "]: " << message;
  return os.str();
}

size_t LintReport::errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) {
      ++n;
    }
  }
  return n;
}

std::string LintReport::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << d.ToString() << "\n";
  }
  os << reachable_instructions << " reachable instruction(s), "
     << errors() << " error(s), " << diagnostics.size() - errors()
     << " warning(s)\n";
  return os.str();
}

LintReport LintImage(const assembler::Image& image, const LintOptions& options) {
  return Linter(image, options).Run();
}

Status VerifyImage(const assembler::Image& image, const LintOptions& options) {
  LintReport report = LintImage(image, options);
  if (report.ok()) {
    return OkStatus();
  }
  return InvalidArgumentError("hvlint rejected image:\n" + report.ToString());
}

}  // namespace hyperion::verify
