#include "src/verify/audit.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace hyperion::verify {

namespace {

std::atomic<int> g_audit_override{-1};  // -1 = follow the environment

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("HYPERION_AUDIT");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool AuditEnabled() {
  int o = g_audit_override.load(std::memory_order_relaxed);
  return o >= 0 ? o != 0 : EnvEnabled();
}

void SetAuditEnabled(bool enabled) {
  g_audit_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  for (const std::string& v : violations) {
    os << v << "\n";
  }
  os << violations.size() << " violation(s)";
  return os.str();
}

void AuditMmuCoherence(const mmu::MemoryVirtualizer& virt, bool paging,
                       uint32_t ptbr, AuditReport* report, uint32_t vcpu) {
  virt.AuditInvariants(paging, ptbr, &report->violations, vcpu);
}

void AuditFrameAccounting(const mem::FramePool& pool,
                          const std::vector<const mem::GuestMemory*>& spaces,
                          AuditReport* report) {
  // Frame -> number of guest pages mapping it, across every space.
  std::unordered_map<mem::HostFrame, uint32_t> mapped;
  for (const mem::GuestMemory* space : spaces) {
    for (uint32_t gpn = 0; gpn < space->num_pages(); ++gpn) {
      mem::HostFrame f = space->FrameForPage(gpn);
      if (f != mem::kInvalidFrame) {
        ++mapped[f];
      }
    }
  }

  for (mem::HostFrame f = 0; f < pool.total_frames(); ++f) {
    uint32_t refs = pool.RefCount(f);
    auto it = mapped.find(f);
    uint32_t maps = it == mapped.end() ? 0 : it->second;
    if (pool.IsNetBuf(f)) {
      // Network payload buffers (net::FrameBuf) hold exactly one pool ref
      // and are never guest-mapped; FrameBuf's own shared handle multiplexes
      // on top (DESIGN.md §10).
      if (refs != 1 || maps != 0) {
        std::ostringstream os;
        os << "netbuf frame " << f << ": refcount " << refs << " mapped by " << maps
           << " guest page(s); expected refcount 1, unmapped";
        report->violations.push_back(os.str());
      }
      continue;
    }
    if (refs != maps) {
      std::ostringstream os;
      os << "frame " << f << ": refcount " << refs << " but mapped by " << maps
         << " guest page(s)";
      report->violations.push_back(os.str());
    }
  }

  // Every page of a multiply-mapped frame must carry the shared (COW) bit,
  // or a plain store could silently write through to the other mappers.
  for (const mem::GuestMemory* space : spaces) {
    for (uint32_t gpn = 0; gpn < space->num_pages(); ++gpn) {
      mem::HostFrame f = space->FrameForPage(gpn);
      if (f == mem::kInvalidFrame || mapped[f] <= 1 || space->IsShared(gpn)) {
        continue;
      }
      std::ostringstream os;
      os << "gpn 0x" << std::hex << gpn << std::dec << " maps frame " << f
         << " (mapped " << mapped[f] << " times) without the shared bit";
      report->violations.push_back(os.str());
    }
  }
}

namespace {

void Violate(AuditReport* report, std::string_view label, const std::string& msg) {
  report->violations.push_back(std::string(label) + ": " + msg);
}

// Whether every page under [gpa, gpa+bytes) is present. Rings whose pages
// are ballooned out or have not yet arrived (post-copy migration) cannot be
// audited — that is a legitimate transient, not an incoherence.
bool RegionPresent(const mem::GuestMemory& memory, uint32_t gpa, uint64_t bytes) {
  if (bytes == 0) {
    return true;
  }
  uint32_t first = isa::PageNumber(gpa);
  uint32_t last = isa::PageNumber(static_cast<uint32_t>(gpa + bytes - 1));
  for (uint32_t gpn = first; gpn <= last; ++gpn) {
    if (!memory.IsPresent(gpn)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void AuditVirtQueue(const virtio::VirtQueue& queue,
                    const mem::GuestMemory& memory, std::string_view label,
                    AuditReport* report) {
  if (!queue.ready()) {
    return;
  }
  const uint32_t size = queue.size();
  if (size == 0 || (size & (size - 1)) != 0 || size > virtio::kMaxQueueSize) {
    Violate(report, label, "ring size " + std::to_string(size) +
                               " is not a power of two <= " +
                               std::to_string(virtio::kMaxQueueSize));
    return;
  }
  const uint64_t ram = memory.ram_size();
  struct Region {
    const char* name;
    uint32_t gpa;
    uint64_t bytes;
  };
  const Region regions[] = {
      {"descriptor table", queue.desc_gpa(), uint64_t{virtio::kDescBytes} * size},
      {"avail ring", queue.avail_gpa(), 4 + uint64_t{2} * size},
      {"used ring", queue.used_gpa(), 4 + uint64_t{8} * size},
  };
  for (const Region& r : regions) {
    if (r.gpa + r.bytes > ram) {
      std::ostringstream os;
      os << r.name << " [0x" << std::hex << r.gpa << ", +0x" << r.bytes
         << ") lies outside guest RAM";
      Violate(report, label, os.str());
      return;
    }
    if (!RegionPresent(memory, r.gpa, r.bytes)) {
      return;  // post-copy/balloon transient; nothing to check yet
    }
  }

  auto avail_idx = memory.ReadU16(queue.avail_gpa() + 2);
  auto used_idx_mem = memory.ReadU16(queue.used_gpa() + 2);
  if (!avail_idx.ok() || !used_idx_mem.ok()) {
    Violate(report, label, "ring indices are unreadable (absent page?)");
    return;
  }
  if (*used_idx_mem != queue.used_idx()) {
    std::ostringstream os;
    os << "published used idx " << *used_idx_mem
       << " diverges from the device counter " << queue.used_idx();
    Violate(report, label, os.str());
  }
  // Order along the ring (mod 2^16): completed <= consumed <= posted, and no
  // window wider than the ring itself.
  uint16_t pending = static_cast<uint16_t>(*avail_idx - queue.last_avail());
  uint16_t popped = static_cast<uint16_t>(queue.last_avail() - queue.used_idx());
  if (pending > size) {
    std::ostringstream os;
    os << "guest posted " << pending << " chains into a ring of " << size;
    Violate(report, label, os.str());
  }
  if (popped > size) {
    std::ostringstream os;
    os << "device holds " << popped << " unpopped completions in a ring of " << size;
    Violate(report, label, os.str());
  }

  // Walk every still-pending descriptor chain: bounded length, no loops,
  // buffers inside RAM.
  uint16_t to_check = pending <= size ? pending : static_cast<uint16_t>(size);
  for (uint16_t n = 0; n < to_check; ++n) {
    uint16_t slot = static_cast<uint16_t>(queue.last_avail() + n) & (size - 1);
    auto head = memory.ReadU16(queue.avail_gpa() + 4 + 2u * slot);
    if (!head.ok()) {
      Violate(report, label, "avail ring entry unreadable");
      return;
    }
    if (*head >= size) {
      std::ostringstream os;
      os << "avail slot " << slot << " holds head " << *head
         << " >= ring size " << size;
      Violate(report, label, os.str());
      continue;
    }
    std::vector<bool> visited(size, false);
    uint16_t idx = *head;
    for (uint32_t len = 0;; ++len) {
      if (len >= size) {
        std::ostringstream os;
        os << "chain from head " << *head << " exceeds ring size";
        Violate(report, label, os.str());
        break;
      }
      if (visited[idx]) {
        std::ostringstream os;
        os << "descriptor loop through index " << idx << " (head " << *head << ")";
        Violate(report, label, os.str());
        break;
      }
      visited[idx] = true;
      uint32_t d = queue.desc_gpa() + virtio::kDescBytes * idx;
      auto gpa = memory.ReadU32(d);
      auto blen = memory.ReadU32(d + 4);
      auto flags = memory.ReadU16(d + 8);
      auto next = memory.ReadU16(d + 10);
      if (!gpa.ok() || !blen.ok() || !flags.ok() || !next.ok()) {
        Violate(report, label, "descriptor unreadable");
        break;
      }
      if (static_cast<uint64_t>(*gpa) + *blen > ram) {
        std::ostringstream os;
        os << "descriptor " << idx << " buffer [0x" << std::hex << *gpa
           << ", +0x" << *blen << ") lies outside guest RAM";
        Violate(report, label, os.str());
        break;
      }
      if ((*flags & virtio::kDescNext) == 0) {
        break;
      }
      if (*next >= size) {
        std::ostringstream os;
        os << "descriptor " << idx << " links to " << *next
           << " >= ring size " << size;
        Violate(report, label, os.str());
        break;
      }
      idx = *next;
    }
  }
}

void AuditVirtioDevice(const virtio::VirtioDevice& device,
                       const mem::GuestMemory& memory, std::string_view label,
                       AuditReport* report) {
  for (uint16_t q = 0; q < device.queue_count(); ++q) {
    AuditVirtQueue(device.queue_at(q), memory,
                   std::string(label) + " q" + std::to_string(q), report);
  }
}

}  // namespace hyperion::verify
