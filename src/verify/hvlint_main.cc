// hvlint CLI: verify HV32 guest images before they ever reach a VM.
//
//   hvlint prog.s [more.s ...]     verify assembly source files
//   hvlint --builtin NAME          verify an in-tree guest program
//   hvlint --builtin all           verify every in-tree guest program
//   hvlint --list-builtins         list in-tree program names
//
// Flags: --no-sp (skip stack discipline), --no-mmio (skip device-window
// checks), -q / --quiet (errors only). Exit status: 0 all images pass,
// 1 at least one rejected, 2 usage or I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/asm/assembler.h"
#include "src/guest/programs.h"
#include "src/verify/hvlint.h"

namespace {

using hyperion::assembler::Image;
using hyperion::verify::LintOptions;
using hyperion::verify::LintReport;

std::map<std::string, std::string> Builtins() {
  using namespace hyperion::guest;
  std::map<std::string, std::string> m;
  m["hello"] = HelloProgram("hello from hvlint\n");
  m["compute"] = ComputeProgram(16);
  m["idle_tick"] = IdleTickProgram(5000);
  m["smp_counter"] = SmpCounterProgram(100);
  m["mem_touch"] = MemTouchProgram({});
  m["pt_churn"] = PtChurnProgram(64);
  m["dirty_rate"] = DirtyRateProgram(64, 32);
  m["pattern_fill"] = PatternFillProgram(32, 16, 1);
  m["balloon_driver"] = BalloonDriverProgram(0x400, 64, 5000);
  m["emulated_blk"] = EmulatedBlkProgram({});
  m["virtio_blk"] = VirtioBlkProgram({});
  m["emulated_net_ping"] = EmulatedNetPingProgram({});
  m["emulated_net_echo"] = EmulatedNetEchoProgram();
  m["virtio_net_ping"] = VirtioNetPingProgram({});
  m["virtio_net_echo"] = VirtioNetEchoProgram();
  return m;
}

int Usage() {
  std::cerr << "usage: hvlint [--no-sp] [--no-mmio] [-q] FILE.s...\n"
               "       hvlint --builtin NAME|all\n"
               "       hvlint --list-builtins\n";
  return 2;
}

// Returns true when the image passes (no errors).
bool LintOne(const std::string& label, const Image& image,
             const LintOptions& options, bool quiet) {
  LintReport report = hyperion::verify::LintImage(image, options);
  bool passed = report.ok();
  if (!quiet || !passed) {
    std::cout << label << ": " << (passed ? "OK" : "REJECTED") << "\n";
    for (const auto& d : report.diagnostics) {
      std::cout << "  " << label << ":" << d.ToString() << "\n";
    }
    if (!quiet) {
      std::cout << "  " << report.reachable_instructions
                << " reachable instruction(s), " << report.errors()
                << " error(s)\n";
    }
  }
  return passed;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  bool quiet = false;
  std::vector<std::string> files;
  std::vector<std::string> builtins;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--no-sp") {
      options.check_sp = false;
    } else if (arg == "--no-mmio") {
      options.check_mmio = false;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-builtins") {
      for (const auto& [name, src] : Builtins()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--builtin") {
      if (++i >= argc) {
        return Usage();
      }
      builtins.push_back(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && builtins.empty()) {
    return Usage();
  }

  bool all_ok = true;
  auto catalog = Builtins();
  for (const std::string& name : builtins) {
    if (name == "all") {
      for (const auto& [n, src] : catalog) {
        auto image = hyperion::guest::Build(src);
        if (!image.ok()) {
          std::cerr << n << ": assembly failed: " << image.status().message()
                    << "\n";
          all_ok = false;
          continue;
        }
        all_ok &= LintOne(n, *image, options, quiet);
      }
      continue;
    }
    auto it = catalog.find(name);
    if (it == catalog.end()) {
      std::cerr << "unknown builtin '" << name
                << "' (try --list-builtins)\n";
      return 2;
    }
    auto image = hyperion::guest::Build(it->second);
    if (!image.ok()) {
      std::cerr << name << ": assembly failed: " << image.status().message()
                << "\n";
      all_ok = false;
      continue;
    }
    all_ok &= LintOne(name, *image, options, quiet);
  }

  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      return 2;
    }
    std::ostringstream source;
    source << in.rdbuf();
    auto image = hyperion::assembler::Assemble(source.str());
    if (!image.ok()) {
      std::cerr << path << ": assembly failed: " << image.status().message()
                << "\n";
      all_ok = false;
      continue;
    }
    all_ok &= LintOne(path, *image, options, quiet);
  }
  return all_ok ? 0 : 1;
}
