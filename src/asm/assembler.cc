#include "src/asm/assembler.h"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/hv32.h"

namespace hyperion::assembler {

namespace {

using isa::AluOp;
using isa::BranchCond;
using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

std::string_view TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && (s[n - 1] == ' ' || s[n - 1] == '\t' || s[n - 1] == '\r')) --n;
  return s.substr(0, n);
}

std::string_view Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

// Strips ';' / '#' comments, respecting double-quoted strings.
std::string_view StripComment(std::string_view line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string && (c == ';' || c == '#')) {
      return line.substr(0, i);
    }
  }
  return line;
}

bool IsSymbolStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool IsSymbolChar(char c) { return IsSymbolStart(c) || std::isdigit(static_cast<unsigned char>(c)); }

// Splits "a, b, c" on top-level commas (no nesting to worry about except
// parens in memory operands, which contain no commas).
std::vector<std::string> SplitOperands(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  bool in_string = false;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] == '"' && (i == 0 || s[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (i == s.size() || (s[i] == ',' && !in_string)) {
      std::string_view piece = Trim(s.substr(start, i - start));
      if (!piece.empty()) {
        out.emplace_back(piece);
      }
      start = i + 1;
    }
  }
  return out;
}

const std::map<std::string, uint8_t, std::less<>>& GprTable() {
  static const std::map<std::string, uint8_t, std::less<>> table = [] {
    std::map<std::string, uint8_t, std::less<>> t;
    for (uint8_t i = 0; i < isa::kNumGprs; ++i) {
      t.emplace(std::string(isa::GprName(i)), i);
      t.emplace("r" + std::to_string(i), i);
    }
    return t;
  }();
  return table;
}

Result<uint8_t> ParseGpr(std::string_view s) {
  auto it = GprTable().find(s);
  if (it == GprTable().end()) {
    return InvalidArgumentError("not a register: '" + std::string(s) + "'");
  }
  return it->second;
}

const std::map<std::string, uint16_t, std::less<>>& CsrTable() {
  static const std::map<std::string, uint16_t, std::less<>> table = {
      {"status", 0x000}, {"cause", 0x001},   {"epc", 0x002},    {"tvec", 0x003},
      {"tval", 0x004},   {"scratch", 0x005}, {"ptbr", 0x006},   {"time", 0x010},
      {"timecmp", 0x011},{"cycle", 0x012},   {"instret", 0x013},{"hartid", 0x014},
      {"ipend", 0x020},
  };
  return table;
}

// ---------------------------------------------------------------------------
// Expressions (evaluated against the symbol table)
// ---------------------------------------------------------------------------

class ExprParser {
 public:
  ExprParser(std::string_view text, const std::map<std::string, uint32_t>& symbols)
      : text_(text), symbols_(symbols) {}

  Result<int64_t> Parse() {
    HYP_ASSIGN_OR_RETURN(int64_t v, ParseSum());
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing junk in expression: '" + std::string(text_) + "'");
    }
    return v;
  }

 private:
  Result<int64_t> ParseSum() {
    HYP_ASSIGN_OR_RETURN(int64_t v, ParseProduct());
    for (;;) {
      SkipWs();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        char op = text_[pos_++];
        HYP_ASSIGN_OR_RETURN(int64_t rhs, ParseProduct());
        v = op == '+' ? v + rhs : v - rhs;
      } else {
        return v;
      }
    }
  }

  Result<int64_t> ParseProduct() {
    HYP_ASSIGN_OR_RETURN(int64_t v, ParseTerm());
    for (;;) {
      SkipWs();
      if (pos_ < text_.size() && (text_[pos_] == '*' || text_[pos_] == '/')) {
        char op = text_[pos_++];
        HYP_ASSIGN_OR_RETURN(int64_t rhs, ParseTerm());
        if (op == '/' && rhs == 0) {
          return InvalidArgumentError("division by zero in expression");
        }
        v = op == '*' ? v * rhs : v / rhs;
      } else {
        return v;
      }
    }
  }

  Result<int64_t> ParseTerm() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("empty expression");
    }
    char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      HYP_ASSIGN_OR_RETURN(int64_t v, ParseTerm());
      return -v;
    }
    if (c == '(') {
      ++pos_;
      HYP_ASSIGN_OR_RETURN(int64_t v, ParseSum());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return InvalidArgumentError("missing ')'");
      }
      ++pos_;
      return v;
    }
    if (c == '\'') {
      // Character literal, with the usual escapes.
      ++pos_;
      if (pos_ >= text_.size()) return InvalidArgumentError("bad char literal");
      char v = text_[pos_++];
      if (v == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          default: return InvalidArgumentError("bad escape in char literal");
        }
      }
      if (pos_ >= text_.size() || text_[pos_] != '\'') {
        return InvalidArgumentError("unterminated char literal");
      }
      ++pos_;
      return static_cast<int64_t>(static_cast<unsigned char>(v));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (IsSymbolStart(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsSymbolChar(text_[pos_])) ++pos_;
      std::string name(text_.substr(start, pos_ - start));
      auto it = symbols_.find(name);
      if (it == symbols_.end()) {
        return NotFoundError("undefined symbol: " + name);
      }
      return static_cast<int64_t>(it->second);
    }
    return InvalidArgumentError("bad expression near '" + std::string(text_.substr(pos_)) + "'");
  }

  Result<int64_t> ParseNumber() {
    int base = 10;
    if (text_.size() - pos_ >= 2 && text_[pos_] == '0' &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      base = 16;
      pos_ += 2;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    std::string digits(text_.substr(start, pos_ - start));
    std::erase(digits, '_');
    if (digits.empty()) {
      return InvalidArgumentError("bad number");
    }
    int64_t v = 0;
    for (char d : digits) {
      int dv;
      if (d >= '0' && d <= '9') {
        dv = d - '0';
      } else if (base == 16 && d >= 'a' && d <= 'f') {
        dv = d - 'a' + 10;
      } else if (base == 16 && d >= 'A' && d <= 'F') {
        dv = d - 'A' + 10;
      } else {
        return InvalidArgumentError("bad digit in number: '" + digits + "'");
      }
      v = v * base + dv;
      if (v > 0xFFFFFFFFll) {
        return OutOfRangeError("number does not fit in 32 bits: " + digits);
      }
    }
    return v;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  std::string_view text_;
  const std::map<std::string, uint32_t>& symbols_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Statement model
// ---------------------------------------------------------------------------

// One pending emission. Instructions keep unresolved operand expressions for
// pass 2; data is stored as expression lists or raw bytes.
struct Stmt {
  enum class Kind { kInstr, kWords, kBytes, kRaw } kind = Kind::kRaw;
  uint32_t addr = 0;
  int line = 0;

  // kInstr
  Instruction instr;                    // register fields resolved in pass 1
  std::string imm_expr;                 // unresolved immediate / target, if any
  bool pc_relative = false;             // branch/jal: imm = value(target) - addr
  bool is_li = false;                   // li/la expansion: lui+addi pair

  // kWords / kBytes
  std::vector<std::string> exprs;

  // kRaw
  std::vector<uint8_t> raw;

  uint32_t Size() const {
    switch (kind) {
      case Kind::kInstr:
        return is_li ? 8 : 4;
      case Kind::kWords:
        return static_cast<uint32_t>(exprs.size() * 4);
      case Kind::kBytes:
        return static_cast<uint32_t>(exprs.size());
      case Kind::kRaw:
        return static_cast<uint32_t>(raw.size());
    }
    return 0;
  }
};

struct MnemonicInfo {
  enum class Family {
    kR3,      // add rd, rs1, rs2
    kI3,      // addi rd, rs1, imm
    kLoad,    // lw rd, imm(rs1)
    kStore,   // sw rsrc, imm(rs1)
    kBranch,  // beq rs1, rs2, target
    kBranchSwap,  // bgt/ble: swapped operands
    kBranchZero,  // beqz/bnez rs, target
    kJal,
    kJalr,
    kLui,     // lui rd, expr
    kCsr,     // csrrw rd, csr, rs1
    kSys,     // no operands
    kSfence,
    kLi,      // li/la rd, expr
    kMv,      // mv rd, rs
    kNot,
    kNeg,
    kJ,       // j target
    kJr,      // jr rs
    kCall,    // call target
    kRet,
    kNop,
    kCsrR,    // csrr rd, csr
    kCsrW,    // csrw csr, rs
  };
  Family family;
  Opcode opcode = Opcode::kIllegal;
  uint8_t funct = 0;
};

const std::map<std::string, MnemonicInfo, std::less<>>& Mnemonics() {
  using F = MnemonicInfo::Family;
  static const std::map<std::string, MnemonicInfo, std::less<>> table = [] {
    std::map<std::string, MnemonicInfo, std::less<>> t;
    static constexpr std::string_view kAlu[] = {"add", "sub", "and", "or",  "xor", "sll",
                                                "srl", "sra", "slt", "sltu", "mul", "mulhu",
                                                "div", "divu", "rem", "remu"};
    for (uint8_t i = 0; i < 16; ++i) {
      t.emplace(std::string(kAlu[i]), MnemonicInfo{F::kR3, Opcode::kOp, i});
      t.emplace(std::string(kAlu[i]) + "i", MnemonicInfo{F::kI3, Opcode::kOpImm, i});
    }
    t.emplace("lw", MnemonicInfo{F::kLoad, Opcode::kLw});
    t.emplace("lh", MnemonicInfo{F::kLoad, Opcode::kLh});
    t.emplace("lhu", MnemonicInfo{F::kLoad, Opcode::kLhu});
    t.emplace("lb", MnemonicInfo{F::kLoad, Opcode::kLb});
    t.emplace("lbu", MnemonicInfo{F::kLoad, Opcode::kLbu});
    t.emplace("sw", MnemonicInfo{F::kStore, Opcode::kSw});
    t.emplace("sh", MnemonicInfo{F::kStore, Opcode::kSh});
    t.emplace("sb", MnemonicInfo{F::kStore, Opcode::kSb});
    static constexpr std::string_view kBr[] = {"beq", "bne", "blt", "bge", "bltu", "bgeu"};
    for (uint8_t i = 0; i < 6; ++i) {
      t.emplace(std::string(kBr[i]), MnemonicInfo{F::kBranch, Opcode::kBranch, i});
    }
    t.emplace("bgt", MnemonicInfo{F::kBranchSwap, Opcode::kBranch,
                                  static_cast<uint8_t>(BranchCond::kLt)});
    t.emplace("ble", MnemonicInfo{F::kBranchSwap, Opcode::kBranch,
                                  static_cast<uint8_t>(BranchCond::kGe)});
    t.emplace("bgtu", MnemonicInfo{F::kBranchSwap, Opcode::kBranch,
                                   static_cast<uint8_t>(BranchCond::kLtu)});
    t.emplace("bleu", MnemonicInfo{F::kBranchSwap, Opcode::kBranch,
                                   static_cast<uint8_t>(BranchCond::kGeu)});
    t.emplace("beqz", MnemonicInfo{F::kBranchZero, Opcode::kBranch,
                                   static_cast<uint8_t>(BranchCond::kEq)});
    t.emplace("bnez", MnemonicInfo{F::kBranchZero, Opcode::kBranch,
                                   static_cast<uint8_t>(BranchCond::kNe)});
    t.emplace("jal", MnemonicInfo{F::kJal, Opcode::kJal});
    t.emplace("jalr", MnemonicInfo{F::kJalr, Opcode::kJalr});
    t.emplace("lui", MnemonicInfo{F::kLui, Opcode::kLui});
    t.emplace("auipc", MnemonicInfo{F::kLui, Opcode::kAuipc});
    t.emplace("csrrw", MnemonicInfo{F::kCsr, Opcode::kCsrrw});
    t.emplace("csrrs", MnemonicInfo{F::kCsr, Opcode::kCsrrs});
    t.emplace("csrrc", MnemonicInfo{F::kCsr, Opcode::kCsrrc});
    t.emplace("ecall", MnemonicInfo{F::kSys, Opcode::kEcall});
    t.emplace("ebreak", MnemonicInfo{F::kSys, Opcode::kEbreak});
    t.emplace("sret", MnemonicInfo{F::kSys, Opcode::kSret});
    t.emplace("wfi", MnemonicInfo{F::kSys, Opcode::kWfi});
    t.emplace("hcall", MnemonicInfo{F::kSys, Opcode::kHcall});
    t.emplace("halt", MnemonicInfo{F::kSys, Opcode::kHalt});
    t.emplace("sfence", MnemonicInfo{F::kSfence, Opcode::kSfence});
    t.emplace("amoswap", MnemonicInfo{F::kR3, Opcode::kAmoSwap});
    t.emplace("amoadd", MnemonicInfo{F::kR3, Opcode::kAmoAdd});
    t.emplace("li", MnemonicInfo{F::kLi});
    t.emplace("la", MnemonicInfo{F::kLi});
    t.emplace("mv", MnemonicInfo{F::kMv});
    t.emplace("not", MnemonicInfo{F::kNot});
    t.emplace("neg", MnemonicInfo{F::kNeg});
    t.emplace("j", MnemonicInfo{F::kJ});
    t.emplace("jr", MnemonicInfo{F::kJr});
    t.emplace("call", MnemonicInfo{F::kCall});
    t.emplace("ret", MnemonicInfo{F::kRet});
    t.emplace("nop", MnemonicInfo{F::kNop});
    t.emplace("csrr", MnemonicInfo{F::kCsrR});
    t.emplace("csrw", MnemonicInfo{F::kCsrW});
    return t;
  }();
  return table;
}

// Parses "imm(reg)" into its parts.
Status ParseMemOperand(std::string_view op, std::string* imm_expr, uint8_t* base_reg) {
  size_t open = op.rfind('(');
  if (open == std::string_view::npos || op.back() != ')') {
    return InvalidArgumentError("expected imm(reg) operand, got '" + std::string(op) + "'");
  }
  std::string_view imm = Trim(op.substr(0, open));
  std::string_view reg = Trim(op.substr(open + 1, op.size() - open - 2));
  HYP_ASSIGN_OR_RETURN(*base_reg, ParseGpr(reg));
  *imm_expr = imm.empty() ? "0" : std::string(imm);
  return OkStatus();
}

Result<uint16_t> ParseCsr(std::string_view s, const std::map<std::string, uint32_t>& equs) {
  auto it = CsrTable().find(s);
  if (it != CsrTable().end()) {
    return it->second;
  }
  ExprParser p(s, equs);
  auto v = p.Parse();
  if (!v.ok() || *v < 0 || *v > 0x3FFF) {
    return InvalidArgumentError("not a CSR: '" + std::string(s) + "'");
  }
  return static_cast<uint16_t>(*v);
}

// ---------------------------------------------------------------------------
// The assembler
// ---------------------------------------------------------------------------

class Assembler {
 public:
  Result<Image> Run(std::string_view source) {
    HYP_RETURN_IF_ERROR(Pass1(source));
    HYP_RETURN_IF_ERROR(Pass2());
    return BuildImage();
  }

 private:
  Status Errorf(int line, const std::string& message) const {
    return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
  }

  Status Pass1(std::string_view source) {
    int line_no = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;

      line = Trim(StripComment(line));
      // Peel off any leading labels.
      while (!line.empty()) {
        size_t i = 0;
        while (i < line.size() && IsSymbolChar(line[i])) ++i;
        if (i > 0 && i < line.size() && line[i] == ':') {
          std::string label(line.substr(0, i));
          if (symbols_.count(label)) {
            return Errorf(line_no, "duplicate label: " + label);
          }
          symbols_[label] = lc_;
          line = TrimLeft(line.substr(i + 1));
        } else {
          break;
        }
      }
      if (line.empty()) {
        continue;
      }
      HYP_RETURN_IF_ERROR(ParseStatement(line, line_no));
    }
    return OkStatus();
  }

  Status ParseStatement(std::string_view line, int line_no) {
    // Split mnemonic from operands.
    size_t sp = 0;
    while (sp < line.size() && !std::isspace(static_cast<unsigned char>(line[sp]))) ++sp;
    std::string mnemonic(line.substr(0, sp));
    std::string_view rest = Trim(line.substr(sp));
    for (auto& c : mnemonic) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

    if (mnemonic[0] == '.') {
      return ParseDirective(mnemonic, rest, line_no);
    }

    auto it = Mnemonics().find(mnemonic);
    if (it == Mnemonics().end()) {
      return Errorf(line_no, "unknown mnemonic: " + mnemonic);
    }
    const MnemonicInfo& info = it->second;
    std::vector<std::string> ops = SplitOperands(rest);

    auto need = [&](size_t n) -> Status {
      if (ops.size() != n) {
        return Errorf(line_no, mnemonic + " expects " + std::to_string(n) + " operands, got " +
                                   std::to_string(ops.size()));
      }
      return OkStatus();
    };

    Stmt s;
    s.kind = Stmt::Kind::kInstr;
    s.addr = lc_;
    s.line = line_no;
    Instruction& in = s.instr;

    using F = MnemonicInfo::Family;
    switch (info.family) {
      case F::kR3: {
        HYP_RETURN_IF_ERROR(need(3));
        in.opcode = info.opcode;
        in.funct = info.funct;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
        HYP_ASSIGN_OR_RETURN(in.rs2, ParseGpr(ops[2]));
        break;
      }
      case F::kI3: {
        HYP_RETURN_IF_ERROR(need(3));
        in.opcode = info.opcode;
        in.funct = info.funct;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
        s.imm_expr = ops[2];
        break;
      }
      case F::kLoad: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = info.opcode;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_RETURN_IF_ERROR(ParseMemOperand(ops[1], &s.imm_expr, &in.rs1));
        break;
      }
      case F::kStore: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = info.opcode;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));  // store data register
        HYP_RETURN_IF_ERROR(ParseMemOperand(ops[1], &s.imm_expr, &in.rs1));
        break;
      }
      case F::kBranch:
      case F::kBranchSwap: {
        HYP_RETURN_IF_ERROR(need(3));
        in.opcode = Opcode::kBranch;
        in.funct = info.funct;
        size_t a = info.family == F::kBranchSwap ? 1 : 0;
        size_t b = info.family == F::kBranchSwap ? 0 : 1;
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[a]));
        HYP_ASSIGN_OR_RETURN(in.rs2, ParseGpr(ops[b]));
        s.imm_expr = ops[2];
        s.pc_relative = true;
        break;
      }
      case F::kBranchZero: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kBranch;
        in.funct = info.funct;
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[0]));
        in.rs2 = isa::kZero;
        s.imm_expr = ops[1];
        s.pc_relative = true;
        break;
      }
      case F::kJal: {
        in.opcode = Opcode::kJal;
        if (ops.size() == 1) {
          in.rd = isa::kRa;
          s.imm_expr = ops[0];
        } else {
          HYP_RETURN_IF_ERROR(need(2));
          HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
          s.imm_expr = ops[1];
        }
        s.pc_relative = true;
        break;
      }
      case F::kJalr: {
        in.opcode = Opcode::kJalr;
        if (ops.size() == 1) {
          in.rd = isa::kRa;
          HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[0]));
          s.imm_expr = "0";
        } else {
          HYP_RETURN_IF_ERROR(need(3));
          HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
          HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
          s.imm_expr = ops[2];
        }
        break;
      }
      case F::kLui: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = info.opcode;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        s.imm_expr = ops[1];
        break;
      }
      case F::kCsr: {
        HYP_RETURN_IF_ERROR(need(3));
        in.opcode = info.opcode;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(uint16_t csr, ParseCsr(ops[1], symbols_));
        in.imm = csr;
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[2]));
        s.imm_expr.clear();
        break;
      }
      case F::kCsrR: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kCsrrs;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(uint16_t csr, ParseCsr(ops[1], symbols_));
        in.imm = csr;
        in.rs1 = isa::kZero;
        break;
      }
      case F::kCsrW: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kCsrrw;
        in.rd = isa::kZero;
        HYP_ASSIGN_OR_RETURN(uint16_t csr, ParseCsr(ops[0], symbols_));
        in.imm = csr;
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
        break;
      }
      case F::kSys: {
        HYP_RETURN_IF_ERROR(need(0));
        in.opcode = info.opcode;
        break;
      }
      case F::kSfence: {
        in.opcode = Opcode::kSfence;
        if (ops.size() == 1) {
          HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[0]));
        } else {
          HYP_RETURN_IF_ERROR(need(0));
        }
        break;
      }
      case F::kLi: {
        HYP_RETURN_IF_ERROR(need(2));
        s.is_li = true;
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        s.imm_expr = ops[1];
        break;
      }
      case F::kMv: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(AluOp::kAdd);
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
        s.imm_expr = "0";
        break;
      }
      case F::kNot: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(AluOp::kXor);
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[1]));
        s.imm_expr = "-1";
        break;
      }
      case F::kNeg: {
        HYP_RETURN_IF_ERROR(need(2));
        in.opcode = Opcode::kOp;
        in.funct = static_cast<uint8_t>(AluOp::kSub);
        HYP_ASSIGN_OR_RETURN(in.rd, ParseGpr(ops[0]));
        in.rs1 = isa::kZero;
        HYP_ASSIGN_OR_RETURN(in.rs2, ParseGpr(ops[1]));
        break;
      }
      case F::kJ: {
        HYP_RETURN_IF_ERROR(need(1));
        in.opcode = Opcode::kJal;
        in.rd = isa::kZero;
        s.imm_expr = ops[0];
        s.pc_relative = true;
        break;
      }
      case F::kJr: {
        HYP_RETURN_IF_ERROR(need(1));
        in.opcode = Opcode::kJalr;
        in.rd = isa::kZero;
        HYP_ASSIGN_OR_RETURN(in.rs1, ParseGpr(ops[0]));
        s.imm_expr = "0";
        break;
      }
      case F::kCall: {
        HYP_RETURN_IF_ERROR(need(1));
        in.opcode = Opcode::kJal;
        in.rd = isa::kRa;
        s.imm_expr = ops[0];
        s.pc_relative = true;
        break;
      }
      case F::kRet: {
        HYP_RETURN_IF_ERROR(need(0));
        in.opcode = Opcode::kJalr;
        in.rd = isa::kZero;
        in.rs1 = isa::kRa;
        s.imm_expr = "0";
        break;
      }
      case F::kNop: {
        HYP_RETURN_IF_ERROR(need(0));
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(AluOp::kAdd);
        in.rd = isa::kZero;
        in.rs1 = isa::kZero;
        s.imm_expr = "0";
        break;
      }
    }

    lc_ += s.Size();
    stmts_.push_back(std::move(s));
    return OkStatus();
  }

  Status ParseDirective(const std::string& name, std::string_view rest, int line_no) {
    if (name == ".org") {
      HYP_ASSIGN_OR_RETURN(int64_t v, EvalNow(rest, line_no));
      lc_ = static_cast<uint32_t>(v);
      if (!org_set_) {
        org_set_ = true;
      }
      return OkStatus();
    }
    if (name == ".equ" || name == ".set") {
      std::vector<std::string> ops = SplitOperands(rest);
      if (ops.size() != 2) {
        return Errorf(line_no, name + " expects NAME, expr");
      }
      HYP_ASSIGN_OR_RETURN(int64_t v, EvalNow(ops[1], line_no));
      symbols_[ops[0]] = static_cast<uint32_t>(v);
      return OkStatus();
    }
    if (name == ".align") {
      HYP_ASSIGN_OR_RETURN(int64_t v, EvalNow(rest, line_no));
      if (v <= 0 || (v & (v - 1)) != 0) {
        return Errorf(line_no, ".align requires a power of two");
      }
      uint32_t align = static_cast<uint32_t>(v);
      uint32_t pad = (align - (lc_ % align)) % align;
      if (pad > 0) {
        Stmt s;
        s.kind = Stmt::Kind::kRaw;
        s.addr = lc_;
        s.line = line_no;
        s.raw.assign(pad, 0);
        lc_ += pad;
        stmts_.push_back(std::move(s));
      }
      return OkStatus();
    }
    if (name == ".space") {
      HYP_ASSIGN_OR_RETURN(int64_t v, EvalNow(rest, line_no));
      if (v < 0) {
        return Errorf(line_no, ".space requires a non-negative size");
      }
      Stmt s;
      s.kind = Stmt::Kind::kRaw;
      s.addr = lc_;
      s.line = line_no;
      s.raw.assign(static_cast<size_t>(v), 0);
      lc_ += static_cast<uint32_t>(v);
      stmts_.push_back(std::move(s));
      return OkStatus();
    }
    if (name == ".word" || name == ".byte") {
      Stmt s;
      s.kind = name == ".word" ? Stmt::Kind::kWords : Stmt::Kind::kBytes;
      s.addr = lc_;
      s.line = line_no;
      s.exprs = SplitOperands(rest);
      if (s.exprs.empty()) {
        return Errorf(line_no, name + " expects at least one value");
      }
      lc_ += s.Size();
      stmts_.push_back(std::move(s));
      return OkStatus();
    }
    if (name == ".entry") {
      std::vector<std::string> ops = SplitOperands(rest);
      if (ops.empty() || ops.size() > 2) {
        return Errorf(line_no, ".entry expects SYMBOL [, user|supervisor]");
      }
      PendingEntry e;
      e.expr = ops[0];
      e.line = line_no;
      if (ops.size() == 2) {
        if (ops[1] == "user") {
          e.priv = isa::PrivMode::kUser;
        } else if (ops[1] == "supervisor") {
          e.priv = isa::PrivMode::kSupervisor;
        } else {
          return Errorf(line_no, ".entry privilege must be 'user' or 'supervisor'");
        }
      }
      pending_entries_.push_back(std::move(e));
      return OkStatus();
    }
    if (name == ".ascii" || name == ".asciz") {
      std::string_view t = Trim(rest);
      if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
        return Errorf(line_no, name + " expects a quoted string");
      }
      Stmt s;
      s.kind = Stmt::Kind::kRaw;
      s.addr = lc_;
      s.line = line_no;
      std::string_view body = t.substr(1, t.size() - 2);
      for (size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == '\\' && i + 1 < body.size()) {
          char e = body[++i];
          switch (e) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default:
              return Errorf(line_no, "bad string escape");
          }
        }
        s.raw.push_back(static_cast<uint8_t>(c));
      }
      if (name == ".asciz") {
        s.raw.push_back(0);
      }
      lc_ += static_cast<uint32_t>(s.raw.size());
      stmts_.push_back(std::move(s));
      return OkStatus();
    }
    return Errorf(line_no, "unknown directive: " + name);
  }

  // Pass-1 (layout-affecting) expressions may only use already-known symbols.
  Result<int64_t> EvalNow(std::string_view expr, int line_no) {
    ExprParser p(expr, symbols_);
    auto v = p.Parse();
    if (!v.ok()) {
      return Errorf(line_no, v.status().message());
    }
    return *v;
  }

  Status Pass2() {
    // Entry declarations may forward-reference labels; every label is known
    // once pass 1 completes, so resolve them here.
    for (const PendingEntry& e : pending_entries_) {
      ExprParser p(e.expr, symbols_);
      auto v = p.Parse();
      if (!v.ok()) {
        return Errorf(e.line, v.status().message());
      }
      entry_points_.push_back(
          EntryPoint{e.expr, static_cast<uint32_t>(*v), e.priv});
    }
    for (Stmt& s : stmts_) {
      switch (s.kind) {
        case Stmt::Kind::kRaw:
          break;
        case Stmt::Kind::kWords:
        case Stmt::Kind::kBytes: {
          for (const std::string& e : s.exprs) {
            ExprParser p(e, symbols_);
            auto v = p.Parse();
            if (!v.ok()) {
              return Errorf(s.line, v.status().message());
            }
            uint32_t u = static_cast<uint32_t>(*v);
            if (s.kind == Stmt::Kind::kWords) {
              for (int b = 0; b < 4; ++b) {
                s.raw.push_back(static_cast<uint8_t>(u >> (8 * b)));
              }
            } else {
              s.raw.push_back(static_cast<uint8_t>(u));
            }
          }
          break;
        }
        case Stmt::Kind::kInstr: {
          if (!s.imm_expr.empty()) {
            ExprParser p(s.imm_expr, symbols_);
            auto v = p.Parse();
            if (!v.ok()) {
              return Errorf(s.line, v.status().message());
            }
            int64_t value = *v;
            if (s.is_li) {
              HYP_RETURN_IF_ERROR(EmitLi(s, static_cast<uint32_t>(value)));
              break;
            }
            if (s.pc_relative) {
              value -= s.addr;
            }
            s.instr.imm = static_cast<int32_t>(value);
          }
          auto word = isa::Encode(s.instr);
          if (!word.ok()) {
            return Errorf(s.line, word.status().message());
          }
          AppendWord(s, *word);
          break;
        }
      }
    }
    return OkStatus();
  }

  // li/la expansion: lui rd, hi ; addi rd, rd, lo  with lo sign-extended.
  Status EmitLi(Stmt& s, uint32_t value) {
    int32_t lo = static_cast<int32_t>(value << 18) >> 18;  // low 14 bits, signed
    uint32_t hi = value - static_cast<uint32_t>(lo);       // multiple of 1<<14

    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = s.instr.rd;
    lui.imm = static_cast<int32_t>(hi);
    auto w1 = isa::Encode(lui);
    if (!w1.ok()) {
      return Errorf(s.line, w1.status().message());
    }

    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = s.instr.rd;
    addi.rs1 = s.instr.rd;
    addi.imm = lo;
    auto w2 = isa::Encode(addi);
    if (!w2.ok()) {
      return Errorf(s.line, w2.status().message());
    }
    AppendWord(s, *w1);
    AppendWord(s, *w2);
    return OkStatus();
  }

  static void AppendWord(Stmt& s, uint32_t word) {
    for (int b = 0; b < 4; ++b) {
      s.raw.push_back(static_cast<uint8_t>(word >> (8 * b)));
    }
  }

  Result<Image> BuildImage() {
    Image image;
    image.symbols = symbols_;
    image.entry_points = entry_points_;
    if (stmts_.empty()) {
      return image;
    }
    uint32_t lo = UINT32_MAX, hi = 0;
    for (const Stmt& s : stmts_) {
      if (s.raw.empty()) continue;
      lo = std::min(lo, s.addr);
      hi = std::max(hi, s.addr + static_cast<uint32_t>(s.raw.size()));
    }
    if (lo > hi) {  // nothing emitted
      return image;
    }
    image.base = lo;
    image.bytes.assign(hi - lo, 0);
    for (const Stmt& s : stmts_) {
      std::copy(s.raw.begin(), s.raw.end(), image.bytes.begin() + (s.addr - lo));
    }
    return image;
  }

  struct PendingEntry {
    std::string expr;
    int line = 0;
    isa::PrivMode priv = isa::PrivMode::kSupervisor;
  };

  uint32_t lc_ = isa::kResetPc;
  bool org_set_ = false;
  std::map<std::string, uint32_t> symbols_;
  std::vector<Stmt> stmts_;
  std::vector<PendingEntry> pending_entries_;
  std::vector<EntryPoint> entry_points_;
};

}  // namespace

Result<Image> Assemble(std::string_view source) {
  Assembler assembler;
  return assembler.Run(source);
}

}  // namespace hyperion::assembler
