// Two-pass assembler for HV32 text assembly.
//
// Guest kernels and workloads in hyperion are written as assembly text and
// assembled into loadable images (see src/guest). Syntax summary:
//
//   ; comment            # comment
//   label:               defines `label` at the current location counter
//   .org 0x1000          sets the location counter (absolute)
//   .align 4             pads to a 2^n... no: pads to the given byte alignment
//   .word 1, 2, sym+4    emits 32-bit little-endian words
//   .byte 1, 2           emits bytes
//   .space 64            emits zero bytes
//   .asciz "hello"       emits a NUL-terminated string
//   .equ NAME, expr      defines a constant (must precede use)
//   .entry sym [, user]  declares `sym` an entry point (default supervisor);
//                        recorded in the image side table for verification
//
//   add a0, a1, t0       R-type ALU (add sub and or xor sll srl sra slt sltu
//                        mul mulhu div divu rem remu)
//   addi a0, a1, -4      I-type ALU (same mnemonics + "i")
//   lw a0, 8(sp)         loads: lw lh lhu lb lbu
//   sw a0, 8(sp)         stores: sw sh sb
//   beq a0, a1, label    branches: beq bne blt bge bltu bgeu (+ bgt ble pseudos)
//   jal ra, label / jalr ra, t0, 0
//   csrrw a0, status, a1 / csrrs / csrrc
//   ecall ebreak sret wfi hcall sfence halt
//
// Pseudo-instructions: li rd, imm32; la rd, symbol; mv rd, rs; not rd, rs;
// neg rd, rs; j label; jr rs; call label; ret; nop; csrr rd, csr;
// csrw csr, rs; beqz/bnez rs, label.
//
// Expressions: decimal/hex/char literals, symbols, unary minus, + and -.

#ifndef SRC_ASM_ASSEMBLER_H_
#define SRC_ASM_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/isa/hv32.h"
#include "src/util/status.h"

namespace hyperion::assembler {

// A declared execution entry point (`.entry` directive). Static verification
// (src/verify) starts control-flow discovery from these, and the privilege
// governs which instructions are legal on paths reached from them.
struct EntryPoint {
  std::string name;
  uint32_t addr = 0;
  isa::PrivMode priv = isa::PrivMode::kSupervisor;
};

// The result of assembling a program: a contiguous byte image to be loaded
// at guest-physical address `base`, plus the resolved symbol table and the
// entry-point side table consumed by hvlint.
struct Image {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
  std::map<std::string, uint32_t> symbols;
  std::vector<EntryPoint> entry_points;

  // Entry point: the `_start` symbol if defined, otherwise `base`.
  uint32_t entry() const {
    auto it = symbols.find("_start");
    return it != symbols.end() ? it->second : base;
  }

  // Resolved address of `name`, or an error if undefined.
  Result<uint32_t> SymbolAddress(const std::string& name) const {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      return NotFoundError("undefined symbol: " + name);
    }
    return it->second;
  }
};

// Assembles `source`. On error the Status message includes the line number.
Result<Image> Assemble(std::string_view source);

}  // namespace hyperion::assembler

#endif  // SRC_ASM_ASSEMBLER_H_
