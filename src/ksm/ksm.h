// Content-based page sharing (KSM-style).
//
// The daemon periodically scans registered guests' pages, hashes their
// contents, byte-compares hash collisions, and merges identical pages onto a
// single reference-counted host frame mapped copy-on-write into every owner.
// Guest stores to a merged page raise a COW-break exit that re-privatizes it
// (handled in the CPU memory path).
//
// Pages that are write-protected (shadow PT interception) or absent are
// never merged.

#ifndef SRC_KSM_KSM_H_
#define SRC_KSM_KSM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/mem/guest_memory.h"

namespace hyperion::ksm {

struct KsmStats {
  uint64_t pages_scanned = 0;
  uint64_t pages_merged = 0;   // remapped onto an existing shared frame
  uint64_t frames_freed = 0;   // host frames released by merging
  uint64_t scan_passes = 0;

  uint64_t BytesSaved() const { return frames_freed * isa::kPageSize; }
};

class KsmDaemon {
 public:
  explicit KsmDaemon(mem::FramePool* pool) : pool_(pool) {}

  // Registers a guest address space for scanning. The memory's invalidate
  // hook (see GuestMemory::SetInvalidateHook) must drop cached translations;
  // merging relies on it.
  void AddClient(mem::GuestMemory* memory) { clients_.push_back(memory); }

  void RemoveClient(mem::GuestMemory* memory) { std::erase(clients_, memory); }

  // One full scan-and-merge pass over all clients. Returns pages merged in
  // this pass.
  uint64_t ScanOnce();

  const KsmStats& stats() const { return stats_; }

 private:
  struct PageRef {
    mem::GuestMemory* memory;
    uint32_t gpn;
  };

  mem::FramePool* pool_;
  std::vector<mem::GuestMemory*> clients_;
  KsmStats stats_;
};

}  // namespace hyperion::ksm

#endif  // SRC_KSM_KSM_H_
