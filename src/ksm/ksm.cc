#include "src/ksm/ksm.h"

#include <cstring>
#include <unordered_map>

#include "src/util/crc32.h"

namespace hyperion::ksm {

// Threading: ScanOnce runs only from clock events, which the staged execution
// core fires at round barriers — never concurrently with guest slices. It may
// therefore read page contents and mutate FramePool refcounts directly,
// without the per-slice staging that in-slice code must use. The serial
// token minted here is the static form of that argument.
uint64_t KsmDaemon::ScanOnce() {
  ScopedSerialPhase serial;
  ++stats_.scan_passes;
  uint64_t merged_this_pass = 0;

  // hash -> representative pages with that content hash. Rebuilt every pass:
  // page contents are volatile, so a persistent table would chase stale data.
  std::unordered_map<uint32_t, std::vector<PageRef>> table;

  for (mem::GuestMemory* memory : clients_) {
    for (uint32_t gpn = 0; gpn < memory->num_pages(); ++gpn) {
      if (!memory->IsPresent(gpn) || memory->IsWriteProtected(gpn)) {
        continue;
      }
      ++stats_.pages_scanned;
      const uint8_t* data = memory->PageData(gpn);
      uint32_t hash = Crc32(data, isa::kPageSize);

      auto& bucket = table[hash];
      bool merged = false;
      for (const PageRef& rep : bucket) {
        mem::HostFrame rep_frame = rep.memory->FrameForPage(rep.gpn);
        mem::HostFrame my_frame = memory->FrameForPage(gpn);
        if (rep_frame == my_frame) {
          merged = true;  // already sharing this frame
          break;
        }
        if (std::memcmp(pool_->FrameData(rep_frame), data, isa::kPageSize) != 0) {
          continue;  // hash collision
        }
        // Merge: both map the representative's frame copy-on-write.
        size_t used_before = pool_->used_frames();
        if (!memory->RemapPage(serial, gpn, rep_frame).ok()) {
          continue;
        }
        memory->SetShared(gpn, true);
        rep.memory->SetShared(rep.gpn, true);
        // The representative's cached writable mappings must be dropped; its
        // page content did not change, so a targeted invalidate suffices.
        if (rep.memory != memory || rep.gpn != gpn) {
          rep.memory->NotifySharedExternally(rep.gpn);
        }
        stats_.frames_freed += used_before - pool_->used_frames();
        ++stats_.pages_merged;
        ++merged_this_pass;
        merged = true;
        break;
      }
      if (!merged) {
        bucket.push_back(PageRef{memory, gpn});
      }
    }
  }
  return merged_this_pass;
}

}  // namespace hyperion::ksm
