// Paravirtual network device.
//
// Queue 0 = RX (guest posts writable buffers; the device fills one per
// incoming frame), queue 1 = TX (guest posts readable frames).
//
// Frame header (8 bytes) precedes payload in every buffer:
//   TX: { u32 dst; u32 len; }   RX: { u32 src; u32 len; }

#ifndef SRC_VIRTIO_VIRTIO_NET_H_
#define SRC_VIRTIO_VIRTIO_NET_H_

#include <deque>

#include "src/net/network.h"
#include "src/virtio/virtio_blk.h"  // virtio device ids

namespace hyperion::virtio {

class VirtioNet final : public VirtioDevice, public net::FrameSink {
 public:
  static constexpr uint16_t kRxQueue = 0;
  static constexpr uint16_t kTxQueue = 1;
  static constexpr uint32_t kFrameHeaderBytes = 8;

  VirtioNet(mem::GuestMemory* memory, devices::IrqLine irq, net::VirtualSwitch* vswitch,
            net::MacAddr addr)
      : VirtioDevice(kVirtioIdNet, 2, memory, irq), switch_(vswitch), addr_(addr) {}

  net::MacAddr addr() const { return addr_; }

  std::string_view name() const override { return "virtio-net"; }

  // net::FrameSink: deliver into posted RX buffers (or queue briefly).
  void OnFrame(const SerialPhase& ph, const net::Frame& frame) override;

  struct NetStats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_dropped = 0;
  };
  const NetStats& net_stats() const { return net_stats_; }

 protected:
  Status ProcessQueue(const Phase& ph, uint16_t q) override;

 private:
  Status DrainTx(const Phase& ph);
  void PumpRx(const Phase& ph);  // move backlog frames into posted buffers

  net::VirtualSwitch* switch_;
  net::MacAddr addr_;
  std::deque<net::Frame> rx_backlog_;
  NetStats net_stats_;
};

}  // namespace hyperion::virtio

#endif  // SRC_VIRTIO_VIRTIO_NET_H_
