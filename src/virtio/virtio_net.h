// Paravirtual network device.
//
// Queue 0 = RX (guest posts writable buffers; the device fills one per
// incoming frame), queue 1 = TX (guest posts readable frames).
//
// Frame header (8 bytes) precedes payload in every buffer:
//   TX: { u32 dst; u32 len; }   RX: { u32 src; u32 len; }
//
// Data plane (DESIGN.md §10):
//   - TX payloads are gathered once into a refcounted net::FrameBuf drawn
//     from the host FramePool and handed to the switch as a batch
//     (TransmitBurst); the bytes are not copied again until the receiving
//     NIC scatters them into an RX chain.
//   - Interrupts coalesce via EVENT_IDX (NotifyUsed) when the driver acks
//     kFeatureEventIdx at 0x2C; one interrupt covers a whole drained batch
//     either way.
//   - Under TX backlog the device enters a NAPI-style polling mode: it sets
//     used.flags NO_NOTIFY (the guest may skip doorbells) and drains
//     tx_poll_budget chains per self-rescheduled poll event until the ring
//     runs dry, then re-arms notifications — re-checking the ring once after
//     re-arming so a chain posted in the unarmed window is never stranded.

#ifndef SRC_VIRTIO_VIRTIO_NET_H_
#define SRC_VIRTIO_VIRTIO_NET_H_

#include <deque>

#include "src/net/network.h"
#include "src/virtio/virtio_blk.h"  // virtio device ids

namespace hyperion::virtio {

struct VirtioNetOptions {
  // RX frames buffered host-side while the guest has no posted buffers;
  // beyond this, frames drop (rx_dropped).
  size_t rx_backlog_cap = 256;
  // TX chains drained per poll round before yielding the host.
  uint32_t tx_poll_budget = 32;
  // Delay between poll rounds while the TX ring stays busy.
  SimTime tx_poll_interval = 2 * kSimTicksPerUs;
};

class VirtioNet final : public VirtioDevice, public net::FrameSink {
 public:
  static constexpr uint16_t kRxQueue = 0;
  static constexpr uint16_t kTxQueue = 1;
  static constexpr uint32_t kFrameHeaderBytes = 8;

  // `clock` may be invalid (unit tests): polling then degrades to draining
  // the TX ring synchronously on each kick.
  VirtioNet(mem::GuestMemory* memory, devices::IrqLine irq, net::VirtualSwitch* vswitch,
            net::MacAddr addr, ClockRef clock = ClockRef(), VirtioNetOptions opts = {})
      : VirtioDevice(kVirtioIdNet, 2, memory, irq),
        switch_(vswitch),
        addr_(addr),
        clock_(clock),
        opts_(opts) {}

  net::MacAddr addr() const { return addr_; }

  std::string_view name() const override { return "virtio-net"; }

  // net::FrameSink: deliver into posted RX buffers (or queue briefly).
  void OnFrame(const SerialPhase& ph, const net::Frame& frame) override;
  // Coalesced delivery: fill RX chains for the whole burst, one interrupt.
  void OnFrameBurst(const SerialPhase& ph, std::span<const net::Frame> frames) override;

  void Reset(const DirectPhase& ph) override;
  void Serialize(ByteWriter& w) const override;
  Status Deserialize(const DirectPhase& ph, ByteReader& r) override;

  struct NetStats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_dropped = 0;
    uint64_t tx_malformed = 0;     // TX chains shorter than the frame header
    uint64_t rx_chain_errors = 0;  // RX chains returned len 0 on bad gpa
    uint64_t rx_backlog_hwm = 0;   // high watermark of the host-side backlog
    uint64_t kicks_suppressed = 0;  // poll rounds that found work: saved doorbells
    uint64_t poll_rounds = 0;       // self-rescheduled TX poll events run
    uint64_t burst_frames = 0;      // RX frames arriving via coalesced bursts

    bool operator==(const NetStats&) const = default;
  };
  const NetStats& net_stats() const { return net_stats_; }

  // True while TX kicks are suppressed and the poll event owns the queue.
  bool tx_polling() const { return tx_polling_; }

 protected:
  Status ProcessQueue(const Phase& ph, uint16_t q) override;

 private:
  struct DrainResult {
    uint32_t drained = 0;
    bool more = false;       // ring still has pending chains
    SimTime egress_clear = 0;  // switch egress busy-until (0 = unknown/staged)
  };

  // One budget-bounded TX drain pass: gather → burst-transmit → complete,
  // one coalesced completion notification.
  Result<DrainResult> DrainTx(const Phase& ph, uint32_t budget);
  // Drives DrainTx and the polling state machine (enter / re-arm / exit).
  Status DrainRound(const Phase& ph);
  // The self-rescheduled poll event; `gen` guards against stale events
  // surviving an exit/Reset/restore.
  void PollTx(const SerialPhase& ph, uint64_t gen);

  void Enqueue(const net::Frame& frame);
  void PumpRx(const Phase& ph);  // move backlog frames into posted buffers

  net::VirtualSwitch* switch_;
  net::MacAddr addr_;
  ClockRef clock_;
  VirtioNetOptions opts_;
  std::deque<net::Frame> rx_backlog_;
  bool tx_polling_ = false;
  uint64_t poll_gen_ = 0;  // bumped on every polling-state transition
  NetStats net_stats_;
};

}  // namespace hyperion::virtio

#endif  // SRC_VIRTIO_VIRTIO_NET_H_
