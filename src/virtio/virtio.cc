#include "src/virtio/virtio.h"

namespace hyperion::virtio {

namespace {

// Ring field offsets.
constexpr uint32_t kAvailIdxOff = 2;
constexpr uint32_t kAvailRingOff = 4;
constexpr uint32_t kUsedIdxOff = 2;
constexpr uint32_t kUsedRingOff = 4;
constexpr uint32_t kUsedElemBytes = 8;

}  // namespace

Result<bool> VirtQueue::HasWork(mem::GuestMemory& memory) const {
  if (!ready()) {
    return false;
  }
  HYP_ASSIGN_OR_RETURN(uint16_t avail_idx, memory.ReadU16(avail_gpa_ + kAvailIdxOff));
  return avail_idx != last_avail_;
}

Result<Chain> VirtQueue::Pop(mem::GuestMemory& memory) {
  if (!ready()) {
    return FailedPreconditionError("queue not ready");
  }
  HYP_ASSIGN_OR_RETURN(uint16_t avail_idx, memory.ReadU16(avail_gpa_ + kAvailIdxOff));
  if (avail_idx == last_avail_) {
    return NotFoundError("no pending chains");
  }
  uint16_t slot = last_avail_ % size_;
  HYP_ASSIGN_OR_RETURN(uint16_t head,
                       memory.ReadU16(avail_gpa_ + kAvailRingOff + slot * 2u));
  ++last_avail_;

  Chain chain;
  chain.head = head;
  uint16_t idx = head;
  for (uint32_t hops = 0; hops <= size_; ++hops) {
    if (idx >= size_) {
      return DataLossError("descriptor index out of range");
    }
    uint32_t d = desc_gpa_ + idx * kDescBytes;
    ChainElem elem;
    HYP_ASSIGN_OR_RETURN(elem.gpa, memory.ReadU32(d));
    HYP_ASSIGN_OR_RETURN(elem.len, memory.ReadU32(d + 4));
    HYP_ASSIGN_OR_RETURN(uint16_t flags, memory.ReadU16(d + 8));
    HYP_ASSIGN_OR_RETURN(uint16_t next, memory.ReadU16(d + 10));
    elem.device_writes = flags & kDescWrite;
    chain.elems.push_back(elem);
    if (!(flags & kDescNext)) {
      return chain;
    }
    idx = next;
  }
  return DataLossError("descriptor chain loops");
}

Status VirtQueue::PushUsed(mem::GuestMemory& memory, uint16_t head, uint32_t written) {
  uint16_t slot = used_idx_ % size_;
  uint32_t e = used_gpa_ + kUsedRingOff + slot * kUsedElemBytes;
  HYP_RETURN_IF_ERROR(memory.WriteU32(e, head));
  HYP_RETURN_IF_ERROR(memory.WriteU32(e + 4, written));
  ++used_idx_;
  return memory.WriteU16(used_gpa_ + kUsedIdxOff, used_idx_);
}

Result<uint32_t> VirtioDevice::Read(uint32_t offset, uint32_t size) {
  if (size != 4) {
    return InvalidArgumentError("virtio registers are word-only");
  }
  switch (offset) {
    case 0x00:
      return device_id_;
    case 0x08:
      return static_cast<uint32_t>(queue(queue_sel_).size());
    case 0x0C:
      return queue(queue_sel_).desc_gpa();
    case 0x10:
      return queue(queue_sel_).avail_gpa();
    case 0x14:
      return queue(queue_sel_).used_gpa();
    case 0x18:
      return static_cast<uint32_t>(queue(queue_sel_).ready() ? 1 : 0);
    case 0x20:
      return isr_;
    case 0x28:
      return device_status_;
    case 0x2C:
      return features_;
    default:
      return NotFoundError("bad virtio register");
  }
}

Status VirtioDevice::Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) {
  if (size != 4) {
    return InvalidArgumentError("virtio registers are word-only");
  }
  switch (offset) {
    case 0x04:
      if (value >= queues_.size()) {
        return InvalidArgumentError("queue_sel out of range");
      }
      queue_sel_ = static_cast<uint16_t>(value);
      return OkStatus();
    case 0x08: {
      if (value == 0 || value > kMaxQueueSize || (value & (value - 1)) != 0) {
        return InvalidArgumentError("queue size must be a power of two <= 256");
      }
      VirtQueue& q = queue(queue_sel_);
      q.Configure(q.desc_gpa(), q.avail_gpa(), q.used_gpa(), static_cast<uint16_t>(value));
      return OkStatus();
    }
    case 0x0C: {
      VirtQueue& q = queue(queue_sel_);
      q.Configure(value, q.avail_gpa(), q.used_gpa(), q.size());
      return OkStatus();
    }
    case 0x10: {
      VirtQueue& q = queue(queue_sel_);
      q.Configure(q.desc_gpa(), value, q.used_gpa(), q.size());
      return OkStatus();
    }
    case 0x14: {
      VirtQueue& q = queue(queue_sel_);
      q.Configure(q.desc_gpa(), q.avail_gpa(), value, q.size());
      return OkStatus();
    }
    case 0x18:
      queue(queue_sel_).set_ready(value != 0);
      return OkStatus();
    case 0x1C:
      if (value >= queues_.size()) {
        return InvalidArgumentError("notify queue out of range");
      }
      return Kick(ph, static_cast<uint16_t>(value));
    case 0x24:
      isr_ &= ~value;
      return OkStatus();
    case 0x28:
      device_status_ = value;
      return OkStatus();
    case 0x2C:
      features_ = value;
      return OkStatus();
    default:
      return NotFoundError("bad virtio register");
  }
}

void VirtioDevice::Reset(const DirectPhase&) {
  for (VirtQueue& q : queues_) {
    q.Reset();
  }
  queue_sel_ = 0;
  isr_ = 0;
  device_status_ = 0;
  features_ = 0;
}

Status VirtioDevice::Kick(const Phase& ph, uint16_t q) {
  if (q >= queues_.size()) {
    return InvalidArgumentError("kick on unknown queue");
  }
  ++stats_.kicks;
  return ProcessQueue(ph, q);
}

void VirtioDevice::NotifyGuest(const Phase& ph) {
  isr_ |= 1;
  ++stats_.interrupts;
  irq_.Assert(ph);
}

void VirtioDevice::NotifyUsed(const Phase& ph, uint16_t q, uint16_t old_used) {
  VirtQueue& vq = queue(q);
  uint16_t new_idx = vq.used_idx();
  if (new_idx == old_used) {
    return;  // nothing published, nothing to signal
  }
  bool suppress = false;
  if (features_ & kFeatureEventIdx) {
    // A torn/unmapped used_event read falls back to interrupting — losing a
    // suppression is safe, losing an interrupt is not.
    auto event = vq.UsedEvent(*memory_);
    suppress = event.ok() && !VirtQueue::NeedEvent(*event, new_idx, old_used);
  } else {
    auto flags = vq.AvailFlags(*memory_);
    suppress = flags.ok() && (*flags & 1) != 0;
  }
  if (suppress) {
    ++stats_.interrupts_suppressed;
    return;
  }
  NotifyGuest(ph);
}

Result<std::vector<uint8_t>> VirtioDevice::GatherReadable(const Chain& chain) {
  std::vector<uint8_t> out;
  out.reserve(chain.TotalReadable());
  for (const ChainElem& e : chain.elems) {
    if (e.device_writes) {
      continue;
    }
    size_t at = out.size();
    out.resize(at + e.len);
    HYP_RETURN_IF_ERROR(memory_->Read(e.gpa, out.data() + at, e.len));
  }
  stats_.bytes_read += out.size();
  return out;
}

Result<uint32_t> VirtioDevice::ScatterWritable(const Chain& chain, const uint8_t* data, size_t n) {
  uint32_t written = 0;
  for (const ChainElem& e : chain.elems) {
    if (!e.device_writes || n == 0) {
      continue;
    }
    uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(e.len, n));
    HYP_RETURN_IF_ERROR(memory_->Write(e.gpa, data, chunk));
    data += chunk;
    n -= chunk;
    written += chunk;
  }
  stats_.bytes_written += written;
  return written;
}

Status VirtioDevice::ReadChain(const Chain& chain, size_t off, uint8_t* dst, size_t n) {
  size_t want = n;
  for (const ChainElem& e : chain.elems) {
    if (e.device_writes || n == 0) {
      continue;
    }
    if (off >= e.len) {
      off -= e.len;
      continue;
    }
    size_t take = std::min<size_t>(e.len - off, n);
    HYP_RETURN_IF_ERROR(memory_->Read(e.gpa + static_cast<uint32_t>(off), dst, take));
    dst += take;
    n -= take;
    off = 0;
  }
  if (n != 0) {
    return OutOfRangeError("chain readable span too short");
  }
  stats_.bytes_read += want;
  return OkStatus();
}

Result<uint32_t> VirtioDevice::WriteChain(const Chain& chain, size_t off, const uint8_t* src,
                                          size_t n) {
  uint32_t written = 0;
  for (const ChainElem& e : chain.elems) {
    if (!e.device_writes || n == 0) {
      continue;
    }
    if (off >= e.len) {
      off -= e.len;
      continue;
    }
    size_t take = std::min<size_t>(e.len - off, n);
    HYP_RETURN_IF_ERROR(memory_->Write(e.gpa + static_cast<uint32_t>(off), src, take));
    src += take;
    n -= take;
    written += static_cast<uint32_t>(take);
    off = 0;
  }
  stats_.bytes_written += written;
  return written;
}

}  // namespace hyperion::virtio
