// Paravirtual console: queue 0 = RX (host -> guest), queue 1 = TX.
// TX chains carry raw bytes appended to the host-visible output string.

#ifndef SRC_VIRTIO_VIRTIO_CONSOLE_H_
#define SRC_VIRTIO_VIRTIO_CONSOLE_H_

#include <deque>
#include <string>

#include "src/virtio/virtio_blk.h"  // virtio device ids

namespace hyperion::virtio {

class VirtioConsole final : public VirtioDevice {
 public:
  static constexpr uint16_t kRxQueue = 0;
  static constexpr uint16_t kTxQueue = 1;

  VirtioConsole(mem::GuestMemory* memory, devices::IrqLine irq)
      : VirtioDevice(kVirtioIdConsole, 2, memory, irq) {}

  std::string_view name() const override { return "virtio-console"; }

  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  // Host-side input; lands in guest-posted RX buffers.
  void InjectInput(const Phase& ph, std::string_view text);

 protected:
  Status ProcessQueue(const Phase& ph, uint16_t q) override;

 private:
  void PumpRx(const Phase& ph);

  std::string output_;
  std::deque<uint8_t> rx_backlog_;
};

}  // namespace hyperion::virtio

#endif  // SRC_VIRTIO_VIRTIO_CONSOLE_H_
