#include "src/virtio/virtio_net.h"

#include <algorithm>
#include <cstring>

namespace hyperion::virtio {

Status VirtioNet::ProcessQueue(const Phase& ph, uint16_t q) {
  if (q == kTxQueue) {
    if (tx_polling_) {
      // A doorbell raced the NO_NOTIFY write (or the guest rang anyway);
      // the in-flight poll event owns the queue.
      return OkStatus();
    }
    return DrainRound(ph);
  }
  // RX kick: the guest posted fresh buffers; drain any backlog into them.
  PumpRx(ph);
  return OkStatus();
}

Status VirtioNet::DrainRound(const Phase& ph) {
  VirtQueue& vq = queue(kTxQueue);
  for (;;) {
    HYP_ASSIGN_OR_RETURN(DrainResult r, DrainTx(ph, std::max(1u, opts_.tx_poll_budget)));
    if (!r.more) {
      if (!tx_polling_) {
        return OkStatus();
      }
      // Ring ran dry: re-arm notifications, then look once more. A chain
      // posted between our last pop and the re-arm saw NO_NOTIFY and sent
      // no doorbell — it must not wait for one that will never come.
      tx_polling_ = false;
      ++poll_gen_;
      HYP_RETURN_IF_ERROR(vq.SetNoNotify(memory(), false));
      HYP_ASSIGN_OR_RETURN(bool late, vq.HasWork(memory()));
      if (!late) {
        return OkStatus();
      }
      continue;
    }
    if (!clock_.valid()) {
      continue;  // no clock to poll on: drain synchronously until dry
    }
    if (!tx_polling_) {
      tx_polling_ = true;
      ++poll_gen_;
      HYP_RETURN_IF_ERROR(vq.SetNoNotify(memory(), true));
    }
    // Pace the poll by the wire, not just the fixed interval: draining
    // faster than the egress link transmits only piles frames into the
    // switch's event queue without delivering any sooner.
    SimTime delay = opts_.tx_poll_interval;
    if (r.egress_clear > clock_.now()) {
      delay = std::max(delay, r.egress_clear - clock_.now());
    }
    clock_.ScheduleAfter(ph, delay,
                         [this, gen = poll_gen_](const SerialPhase& sp) { PollTx(sp, gen); });
    return OkStatus();
  }
}

void VirtioNet::PollTx(const SerialPhase& ph, uint64_t gen) {
  if (gen != poll_gen_ || !tx_polling_) {
    return;  // stale event: polling exited/restarted since it was scheduled
  }
  ++net_stats_.poll_rounds;
  auto has = queue(kTxQueue).HasWork(memory());
  if (has.ok() && *has) {
    ++net_stats_.kicks_suppressed;  // work arrived with no doorbell needed
  }
  // Ring errors mid-poll have no kick to fail; drop them like a real NIC
  // drops frames on a dead ring.
  (void)DrainRound(ph);
}

Result<VirtioNet::DrainResult> VirtioNet::DrainTx(const Phase& ph, uint32_t budget) {
  VirtQueue& vq = queue(kTxQueue);
  DrainResult r;
  if (!vq.ready()) {
    return r;
  }
  uint16_t old_used = vq.used_idx();
  std::vector<net::Frame> burst;
  for (uint32_t i = 0; i < budget; ++i) {
    HYP_ASSIGN_OR_RETURN(bool has, vq.HasWork(memory()));
    if (!has) {
      break;
    }
    HYP_ASSIGN_OR_RETURN(Chain chain, vq.Pop(memory()));
    ++mutable_stats().chains;
    uint32_t readable = chain.TotalReadable();
    if (readable < kFrameHeaderBytes) {
      ++net_stats_.tx_malformed;  // runt: no room for even the header
      HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 0));
      ++r.drained;
      continue;
    }
    uint8_t hdr[kFrameHeaderBytes];
    HYP_RETURN_IF_ERROR(ReadChain(chain, 0, hdr, sizeof hdr));
    uint32_t dst, len;
    std::memcpy(&dst, hdr, 4);
    std::memcpy(&len, hdr + 4, 4);
    len = std::min(len, readable - kFrameHeaderBytes);
    len = std::min(len, static_cast<uint32_t>(net::kMaxFrameBytes));
    net::Frame f;
    f.src = addr_;
    f.dst = dst;
    // The single gather: guest TX buffer -> pool-backed FrameBuf. Everything
    // downstream (switch staging, links, fault injection, RX backlog) shares
    // this buffer by handle.
    f.payload = net::FrameBuf::Allocate(&memory().pool(), len);
    size_t off = 0;
    for (size_t c = 0; c < f.payload.num_chunks(); ++c) {
      std::span<uint8_t> span = f.payload.chunk(c);
      HYP_RETURN_IF_ERROR(ReadChain(chain, kFrameHeaderBytes + off, span.data(), span.size()));
      off += span.size();
    }
    burst.push_back(std::move(f));
    ++net_stats_.tx_frames;
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 0));
    ++r.drained;
  }
  if (!burst.empty()) {
    r.egress_clear = switch_->TransmitBurst(ph, std::move(burst));
  }
  if (vq.used_idx() != old_used) {
    NotifyUsed(ph, kTxQueue, old_used);
  }
  HYP_ASSIGN_OR_RETURN(r.more, vq.HasWork(memory()));
  return r;
}

void VirtioNet::OnFrame(const SerialPhase& ph, const net::Frame& frame) {
  Enqueue(frame);
  PumpRx(ph);
}

void VirtioNet::OnFrameBurst(const SerialPhase& ph, std::span<const net::Frame> frames) {
  net_stats_.burst_frames += frames.size();
  for (const net::Frame& f : frames) {
    Enqueue(f);
  }
  // One pump, one coalesced interrupt for the whole burst.
  PumpRx(ph);
}

void VirtioNet::Enqueue(const net::Frame& frame) {
  if (rx_backlog_.size() >= opts_.rx_backlog_cap) {
    ++net_stats_.rx_dropped;
    return;
  }
  rx_backlog_.push_back(frame);
  net_stats_.rx_backlog_hwm = std::max<uint64_t>(net_stats_.rx_backlog_hwm, rx_backlog_.size());
}

void VirtioNet::PumpRx(const Phase& ph) {
  VirtQueue& vq = queue(kRxQueue);
  uint16_t old_used = vq.used_idx();
  while (!rx_backlog_.empty()) {
    auto has = vq.HasWork(memory());
    if (!has.ok() || !*has) {
      break;  // no posted buffers; keep the backlog
    }
    auto chain = vq.Pop(memory());
    if (!chain.ok()) {
      break;
    }
    const net::Frame& f = rx_backlog_.front();
    uint32_t len = static_cast<uint32_t>(f.payload.size());
    uint8_t hdr[kFrameHeaderBytes];
    std::memcpy(hdr, &f.src, 4);
    std::memcpy(hdr + 4, &len, 4);
    auto hdr_written = WriteChain(*chain, 0, hdr, sizeof hdr);
    uint32_t written = hdr_written.ok() ? *hdr_written : 0;
    bool chain_bad = !hdr_written.ok();
    size_t off = 0;
    for (size_t c = 0; !chain_bad && c < f.payload.num_chunks(); ++c) {
      std::span<const uint8_t> span = f.payload.chunk(c);
      auto w = WriteChain(*chain, kFrameHeaderBytes + off, span.data(), span.size());
      if (!w.ok()) {
        chain_bad = true;
        break;
      }
      written += *w;
      off += span.size();
    }
    if (chain_bad) {
      // Bad guest buffer address: return the chain (len 0) so the guest
      // does not permanently lose this RX slot, keep the frame queued, and
      // try the next posted chain.
      (void)vq.PushUsed(memory(), chain->head, 0);
      ++net_stats_.rx_chain_errors;
      continue;
    }
    if (written < kFrameHeaderBytes + len) {
      ++net_stats_.rx_dropped;  // posted buffer too small: frame truncated/lost
    } else {
      ++net_stats_.rx_frames;
    }
    (void)vq.PushUsed(memory(), chain->head, written);
    rx_backlog_.pop_front();
  }
  if (vq.used_idx() != old_used) {
    NotifyUsed(ph, kRxQueue, old_used);
  }
}

void VirtioNet::Reset(const DirectPhase& ph) {
  VirtioDevice::Reset(ph);
  rx_backlog_.clear();
  tx_polling_ = false;
  ++poll_gen_;  // orphan any in-flight poll event
}

void VirtioNet::Serialize(ByteWriter& w) const {
  VirtioDevice::Serialize(w);
  w.WriteU8(tx_polling_ ? 1 : 0);
}

Status VirtioNet::Deserialize(const DirectPhase& ph, ByteReader& r) {
  HYP_RETURN_IF_ERROR(VirtioDevice::Deserialize(ph, r));
  HYP_ASSIGN_OR_RETURN(uint8_t polling, r.ReadU8());
  // Without a clock there is nothing to re-arm; fall back to kick-driven
  // drains rather than deadlocking behind a suppressed doorbell.
  tx_polling_ = polling != 0 && clock_.valid();
  ++poll_gen_;  // events scheduled before the restore are stale
  if (polling != 0 && !tx_polling_) {
    (void)queue(kTxQueue).SetNoNotify(memory(), false);  // re-arm doorbells
  }
  if (tx_polling_) {
    // The snapshot caught us mid-poll; re-arm the poll event so the TX ring
    // does not deadlock behind a suppressed doorbell.
    clock_.ScheduleAfter(ph, opts_.tx_poll_interval,
                         [this, gen = poll_gen_](const SerialPhase& sp) { PollTx(sp, gen); });
  }
  return OkStatus();
}

}  // namespace hyperion::virtio
