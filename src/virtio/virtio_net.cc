#include "src/virtio/virtio_net.h"

#include <cstring>

namespace hyperion::virtio {

Status VirtioNet::ProcessQueue(const Phase& ph, uint16_t q) {
  if (q == kTxQueue) {
    return DrainTx(ph);
  }
  // RX kick: the guest posted fresh buffers; drain any backlog into them.
  PumpRx(ph);
  return OkStatus();
}

Status VirtioNet::DrainTx(const Phase& ph) {
  VirtQueue& vq = queue(kTxQueue);
  bool any = false;
  for (;;) {
    auto has = vq.HasWork(memory());
    if (!has.ok()) {
      return has.status();  // ring metadata unreadable: fail the kick
    }
    if (!*has) {
      break;
    }
    HYP_ASSIGN_OR_RETURN(Chain chain, vq.Pop(memory()));
    ++mutable_stats().chains;
    HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> data, GatherReadable(chain));
    if (data.size() >= kFrameHeaderBytes) {
      uint32_t dst, len;
      std::memcpy(&dst, data.data(), 4);
      std::memcpy(&len, data.data() + 4, 4);
      len = std::min<uint32_t>(len, static_cast<uint32_t>(data.size() - kFrameHeaderBytes));
      net::Frame f;
      f.src = addr_;
      f.dst = dst;
      f.payload.assign(data.begin() + kFrameHeaderBytes,
                       data.begin() + kFrameHeaderBytes + len);
      switch_->Transmit(ph, std::move(f));
      ++net_stats_.tx_frames;
    }
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 0));
    any = true;
  }
  if (any) {
    NotifyGuest(ph);
  }
  return OkStatus();
}

void VirtioNet::OnFrame(const SerialPhase& ph, const net::Frame& frame) {
  if (rx_backlog_.size() >= 256) {
    ++net_stats_.rx_dropped;
    return;
  }
  rx_backlog_.push_back(frame);
  PumpRx(ph);
}

void VirtioNet::PumpRx(const Phase& ph) {
  VirtQueue& vq = queue(kRxQueue);
  bool delivered = false;
  while (!rx_backlog_.empty()) {
    auto has = vq.HasWork(memory());
    if (!has.ok() || !*has) {
      break;  // no posted buffers; keep the backlog
    }
    auto chain = vq.Pop(memory());
    if (!chain.ok()) {
      break;
    }
    const net::Frame& f = rx_backlog_.front();
    std::vector<uint8_t> buf(kFrameHeaderBytes + f.payload.size());
    uint32_t len = static_cast<uint32_t>(f.payload.size());
    std::memcpy(buf.data(), &f.src, 4);
    std::memcpy(buf.data() + 4, &len, 4);
    std::memcpy(buf.data() + kFrameHeaderBytes, f.payload.data(), f.payload.size());
    auto written = ScatterWritable(*chain, buf.data(), buf.size());
    if (!written.ok()) {
      break;
    }
    if (*written < buf.size()) {
      ++net_stats_.rx_dropped;  // posted buffer too small: frame truncated/lost
    } else {
      ++net_stats_.rx_frames;
    }
    (void)vq.PushUsed(memory(), chain->head, *written);
    rx_backlog_.pop_front();
    delivered = true;
  }
  if (delivered) {
    NotifyGuest(ph);
  }
}

}  // namespace hyperion::virtio
