// Virtio-style paravirtual device framework.
//
// Queues are split rings living in guest memory (descriptor table, avail
// ring, used ring). The guest posts descriptor chains and *kicks* the device
// with a single doorbell (one MMIO exit — or a cheaper hypercall); the device
// moves data host-side ("DMA", no exits) and posts completions to the used
// ring with one interrupt. This amortization is the paravirtual win measured
// in experiment F3.
//
// Ring formats (all little-endian, in guest-physical memory):
//   Desc  { u32 gpa; u32 len; u16 flags; u16 next; }   flags: 1=NEXT 2=WRITE
//   Avail { u16 flags; u16 idx; u16 ring[qsize]; }
//   Used  { u16 flags; u16 idx; { u32 id; u32 len; } ring[qsize]; }
//
// Device register window (word access):
//   0x00 DEVICE_ID   (RO) 1=net 2=blk 3=console
//   0x04 QUEUE_SEL   (WO)
//   0x08 QUEUE_NUM   (RW) ring size (power of two, <= 256)
//   0x0C QUEUE_DESC  (RW) gpa of the descriptor table
//   0x10 QUEUE_AVAIL (RW) gpa of the avail ring
//   0x14 QUEUE_USED  (RW) gpa of the used ring
//   0x18 QUEUE_READY (RW) 1 = ring enabled
//   0x1C QUEUE_NOTIFY(WO) doorbell: value = queue index
//   0x20 ISR_STATUS  (RO) bit0 = used-ring update
//   0x24 ISR_ACK     (W1C)
//   0x28 DEVICE_STATUS (RW) driver handshake bits
//   0x2C DRIVER_FEATURES (RW) feature bits acked by the driver
//
// Interrupt coalescing (DESIGN.md §10): with kFeatureEventIdx negotiated at
// 0x2C, the guest publishes a `used_event` index in the word after the avail
// ring (avail + 4 + 2*qsize); the device interrupts only when the used index
// crosses it. Without the feature, bit0 of avail.flags suppresses interrupts
// outright (best-effort NO_INTERRUPT). In the other direction the device
// sets bit0 of used.flags (kUsedNoNotify) while it is polling a queue, so a
// cooperating guest can skip doorbells it knows the device will not miss.
// (The device-to-driver half of full VIRTIO_F_EVENT_IDX — an avail_event in
// the used ring — is deliberately not modeled; NO_NOTIFY covers the polling
// window with less guest-side bookkeeping.)

#ifndef SRC_VIRTIO_VIRTIO_H_
#define SRC_VIRTIO_VIRTIO_H_

#include <cstdint>
#include <vector>

#include "src/devices/pic.h"
#include "src/mem/guest_memory.h"

namespace hyperion::virtio {

inline constexpr uint16_t kDescNext = 1;
inline constexpr uint16_t kDescWrite = 2;
inline constexpr uint16_t kMaxQueueSize = 256;
inline constexpr uint32_t kDescBytes = 12;  // sizeof one Desc entry

// DRIVER_FEATURES (0x2C) bits.
inline constexpr uint32_t kFeatureEventIdx = 1u << 0;  // used_event suppression

// used.flags bit0: device is polling, driver may skip doorbells.
inline constexpr uint16_t kUsedNoNotify = 1;

// One element of a popped descriptor chain.
struct ChainElem {
  uint32_t gpa = 0;
  uint32_t len = 0;
  bool device_writes = false;  // kDescWrite: device -> guest
};

// A popped chain plus the head descriptor id needed for the used ring.
struct Chain {
  uint16_t head = 0;
  std::vector<ChainElem> elems;

  uint32_t TotalReadable() const {
    uint32_t n = 0;
    for (const auto& e : elems) {
      if (!e.device_writes) {
        n += e.len;
      }
    }
    return n;
  }
  uint32_t TotalWritable() const {
    uint32_t n = 0;
    for (const auto& e : elems) {
      if (e.device_writes) {
        n += e.len;
      }
    }
    return n;
  }
};

// Host-side view of one virtqueue.
class VirtQueue {
 public:
  void Configure(uint32_t desc, uint32_t avail, uint32_t used, uint16_t size) {
    desc_gpa_ = desc;
    avail_gpa_ = avail;
    used_gpa_ = used;
    size_ = size;
  }
  void set_ready(bool ready) { ready_ = ready; }
  bool ready() const { return ready_ && size_ != 0; }
  uint16_t size() const { return size_; }
  uint32_t desc_gpa() const { return desc_gpa_; }
  uint32_t avail_gpa() const { return avail_gpa_; }
  uint32_t used_gpa() const { return used_gpa_; }

  // True when the guest has posted chains we have not yet popped.
  Result<bool> HasWork(mem::GuestMemory& memory) const;

  // Pops the next available chain; NotFound when none pending.
  Result<Chain> Pop(mem::GuestMemory& memory);

  // Publishes a completion for `head` with `written` device-written bytes.
  Status PushUsed(mem::GuestMemory& memory, uint16_t head, uint32_t written);

  // The guest's used_event index (EVENT_IDX): the word after the avail ring.
  Result<uint16_t> UsedEvent(mem::GuestMemory& memory) const {
    return memory.ReadU16(avail_gpa_ + 4 + 2u * size_);
  }
  // avail.flags (bit0 = legacy NO_INTERRUPT suppression).
  Result<uint16_t> AvailFlags(mem::GuestMemory& memory) const {
    return memory.ReadU16(avail_gpa_);
  }
  // Sets/clears used.flags bit0 (kUsedNoNotify) — kick suppression while the
  // device polls this queue.
  Status SetNoNotify(mem::GuestMemory& memory, bool on) {
    return memory.WriteU16(used_gpa_, on ? kUsedNoNotify : 0);
  }

  // EVENT_IDX crossing test: true when the used index moved from old_idx to
  // new_idx past the guest's published event, in modulo-2^16 arithmetic
  // (virtio spec vring_need_event). Handles wraparound by construction.
  static bool NeedEvent(uint16_t event, uint16_t new_idx, uint16_t old_idx) {
    return static_cast<uint16_t>(new_idx - event - 1) <
           static_cast<uint16_t>(new_idx - old_idx);
  }

  void Reset() {
    desc_gpa_ = avail_gpa_ = used_gpa_ = 0;
    size_ = 0;
    last_avail_ = 0;
    used_idx_ = 0;
    ready_ = false;
  }

  uint16_t last_avail() const { return last_avail_; }
  // Device-side used index; must match the idx published in guest memory.
  uint16_t used_idx() const { return used_idx_; }

  void Serialize(ByteWriter& w) const {
    w.WriteU32(desc_gpa_);
    w.WriteU32(avail_gpa_);
    w.WriteU32(used_gpa_);
    w.WriteU16(size_);
    w.WriteU16(last_avail_);
    w.WriteU16(used_idx_);
    w.WriteU8(ready_ ? 1 : 0);
  }

  Status Deserialize(ByteReader& r) {
    HYP_ASSIGN_OR_RETURN(desc_gpa_, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(avail_gpa_, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(used_gpa_, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(size_, r.ReadU16());
    HYP_ASSIGN_OR_RETURN(last_avail_, r.ReadU16());
    HYP_ASSIGN_OR_RETURN(used_idx_, r.ReadU16());
    HYP_ASSIGN_OR_RETURN(uint8_t ready, r.ReadU8());
    ready_ = ready != 0;
    return OkStatus();
  }

 private:
  uint32_t desc_gpa_ = 0;
  uint32_t avail_gpa_ = 0;
  uint32_t used_gpa_ = 0;
  uint16_t size_ = 0;
  uint16_t last_avail_ = 0;
  uint16_t used_idx_ = 0;
  bool ready_ = false;
};

// Base class implementing the register window and ISR/IRQ behavior.
// Subclasses implement ProcessQueue(), called on each doorbell.
class VirtioDevice : public devices::MmioDevice {
 public:
  VirtioDevice(uint32_t device_id, uint16_t num_queues, mem::GuestMemory* memory,
               devices::IrqLine irq)
      : device_id_(device_id), queues_(num_queues), memory_(memory), irq_(irq) {}

  Result<uint32_t> Read(uint32_t offset, uint32_t size) override;
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override;
  void Reset(const DirectPhase& ph) override;

  void Serialize(ByteWriter& w) const override {
    for (const VirtQueue& q : queues_) {
      q.Serialize(w);
    }
    w.WriteU16(queue_sel_);
    w.WriteU32(isr_);
    w.WriteU32(device_status_);
    w.WriteU32(features_);
  }

  Status Deserialize(const DirectPhase&, ByteReader& r) override {
    for (VirtQueue& q : queues_) {
      HYP_RETURN_IF_ERROR(q.Deserialize(r));
    }
    HYP_ASSIGN_OR_RETURN(queue_sel_, r.ReadU16());
    HYP_ASSIGN_OR_RETURN(isr_, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(device_status_, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(features_, r.ReadU32());
    return OkStatus();
  }

  // Doorbell entry point; also reachable via the kVirtioKick hypercall.
  // Dual-regime: guest doorbells arrive under the slice's ExecutePhase,
  // host-side pokes (tests, console input) under a direct token.
  Status Kick(const Phase& ph, uint16_t queue);

  // Read-only queue access for the invariant auditors (src/verify).
  const VirtQueue& queue_at(uint16_t i) const { return queues_[i]; }
  uint16_t queue_count() const { return static_cast<uint16_t>(queues_.size()); }

  struct Stats {
    uint64_t kicks = 0;
    uint64_t chains = 0;
    uint64_t bytes_read = 0;     // guest -> device
    uint64_t bytes_written = 0;  // device -> guest
    uint64_t interrupts = 0;
    uint64_t interrupts_suppressed = 0;  // used-ring updates with no interrupt

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

  // Feature bits the driver acked at 0x2C.
  uint32_t features() const { return features_; }

 protected:
  virtual Status ProcessQueue(const Phase& ph, uint16_t queue) = 0;

  // Raises the used-ring ISR bit and the interrupt line.
  void NotifyGuest(const Phase& ph);

  // Interrupt delivery with coalescing: call after pushing completions that
  // moved queue `q`'s used index from `old_used`. Interrupts unless the
  // guest suppressed it — via used_event when kFeatureEventIdx is acked,
  // via avail.flags NO_INTERRUPT otherwise. Suppressions are counted.
  void NotifyUsed(const Phase& ph, uint16_t q, uint16_t old_used);

  // Copies a readable chain's bytes into a flat buffer (guest -> device).
  Result<std::vector<uint8_t>> GatherReadable(const Chain& chain);
  // Scatters `data` into the chain's writable elements (device -> guest).
  Result<uint32_t> ScatterWritable(const Chain& chain, const uint8_t* data, size_t n);

  // Chunk-cursor variants for zero-copy payloads: read/write `n` bytes at
  // byte offset `off` within the chain's readable/writable span, without
  // flattening the chain into a temporary. ReadChain errors if the readable
  // span is shorter than off+n; WriteChain clamps to capacity and returns
  // the bytes actually written.
  Status ReadChain(const Chain& chain, size_t off, uint8_t* dst, size_t n);
  Result<uint32_t> WriteChain(const Chain& chain, size_t off, const uint8_t* src, size_t n);

  mem::GuestMemory& memory() { return *memory_; }
  VirtQueue& queue(uint16_t i) { return queues_[i]; }
  uint16_t num_queues() const { return static_cast<uint16_t>(queues_.size()); }
  Stats& mutable_stats() { return stats_; }

 private:
  uint32_t device_id_;
  std::vector<VirtQueue> queues_;
  mem::GuestMemory* memory_;
  devices::IrqLine irq_;
  uint16_t queue_sel_ = 0;
  uint32_t isr_ = 0;
  uint32_t device_status_ = 0;
  uint32_t features_ = 0;
  Stats stats_;
};

}  // namespace hyperion::virtio

#endif  // SRC_VIRTIO_VIRTIO_H_
