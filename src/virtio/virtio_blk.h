// Paravirtual block device.
//
// Request chain format (queue 0):
//   desc 0 (RO): header { u32 type (0=read, 1=write); u32 pad; u64 sector; }
//   desc 1..k  : data buffers (WRITE flag set for reads)
//   desc last (WO): u8 status (0 = ok, 1 = io error, 2 = unsupported)
//
// One kick may carry many requests; completions are posted together and a
// single interrupt fires — per-request exit cost approaches 1/batch.

#ifndef SRC_VIRTIO_VIRTIO_BLK_H_
#define SRC_VIRTIO_VIRTIO_BLK_H_

#include "src/storage/block_store.h"
#include "src/util/cost_model.h"
#include "src/util/sim_clock.h"
#include "src/virtio/virtio.h"

namespace hyperion::virtio {

inline constexpr uint32_t kVirtioIdNet = 1;
inline constexpr uint32_t kVirtioIdBlk = 2;
inline constexpr uint32_t kVirtioIdConsole = 3;

inline constexpr uint32_t kBlkReqRead = 0;
inline constexpr uint32_t kBlkReqWrite = 1;

inline constexpr uint8_t kBlkStatusOk = 0;
inline constexpr uint8_t kBlkStatusIoErr = 1;
inline constexpr uint8_t kBlkStatusUnsupported = 2;

class VirtioBlk final : public VirtioDevice {
 public:
  // `clock` may be invalid for synchronous completion (unit tests). An
  // owner-tagged ClockRef lets the owning VM cancel in-flight completion
  // events on destruction.
  VirtioBlk(mem::GuestMemory* memory, devices::IrqLine irq, storage::BlockStore* store,
            ClockRef clock, const CostModel& costs = CostModel::Default())
      : VirtioDevice(kVirtioIdBlk, 1, memory, irq),
        store_(store),
        clock_(clock),
        costs_(costs) {}

  std::string_view name() const override { return "virtio-blk"; }

  struct BlkStats {
    uint64_t requests = 0;
    uint64_t sectors = 0;
    uint64_t errors = 0;
  };
  const BlkStats& blk_stats() const { return blk_stats_; }

 protected:
  Status ProcessQueue(const Phase& ph, uint16_t q) override;

 private:
  // Executes one request chain; returns sectors moved (for timing).
  Result<uint64_t> HandleChain(const Chain& chain);

  storage::BlockStore* store_;
  ClockRef clock_;
  const CostModel& costs_;
  BlkStats blk_stats_;
};

}  // namespace hyperion::virtio

#endif  // SRC_VIRTIO_VIRTIO_BLK_H_
