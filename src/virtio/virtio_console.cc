#include "src/virtio/virtio_console.h"

namespace hyperion::virtio {

Status VirtioConsole::ProcessQueue(const Phase& ph, uint16_t q) {
  if (q == kRxQueue) {
    PumpRx(ph);
    return OkStatus();
  }
  VirtQueue& vq = queue(kTxQueue);
  bool any = false;
  for (;;) {
    auto has = vq.HasWork(memory());
    if (!has.ok()) {
      return has.status();  // ring metadata unreadable: fail the kick
    }
    if (!*has) {
      break;
    }
    HYP_ASSIGN_OR_RETURN(Chain chain, vq.Pop(memory()));
    ++mutable_stats().chains;
    HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> data, GatherReadable(chain));
    output_.append(data.begin(), data.end());
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 0));
    any = true;
  }
  if (any) {
    NotifyGuest(ph);
  }
  return OkStatus();
}

void VirtioConsole::InjectInput(const Phase& ph, std::string_view text) {
  for (char c : text) {
    rx_backlog_.push_back(static_cast<uint8_t>(c));
  }
  PumpRx(ph);
}

void VirtioConsole::PumpRx(const Phase& ph) {
  VirtQueue& vq = queue(kRxQueue);
  bool delivered = false;
  while (!rx_backlog_.empty()) {
    auto has = vq.HasWork(memory());
    if (!has.ok() || !*has) {
      break;
    }
    auto chain = vq.Pop(memory());
    if (!chain.ok()) {
      break;
    }
    std::vector<uint8_t> buf(
        std::min<size_t>(rx_backlog_.size(), chain->TotalWritable()));
    for (auto& b : buf) {
      b = rx_backlog_.front();
      rx_backlog_.pop_front();
    }
    auto written = ScatterWritable(*chain, buf.data(), buf.size());
    if (!written.ok()) {
      break;
    }
    (void)vq.PushUsed(memory(), chain->head, *written);
    delivered = true;
  }
  if (delivered) {
    NotifyGuest(ph);
  }
}

}  // namespace hyperion::virtio
