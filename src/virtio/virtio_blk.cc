#include "src/virtio/virtio_blk.h"

#include <cstring>

namespace hyperion::virtio {

namespace {
constexpr uint32_t kHeaderBytes = 16;
}

Status VirtioBlk::ProcessQueue(const Phase& ph, uint16_t q) {
  VirtQueue& vq = queue(q);
  uint64_t total_sectors = 0;
  bool any = false;
  for (;;) {
    auto has = vq.HasWork(memory());
    if (!has.ok()) {
      return has.status();  // ring metadata unreadable: fail the kick
    }
    if (!*has) {
      break;
    }
    HYP_ASSIGN_OR_RETURN(Chain chain, vq.Pop(memory()));
    ++mutable_stats().chains;
    auto sectors = HandleChain(chain);
    if (!sectors.ok()) {
      return sectors.status();
    }
    total_sectors += *sectors;
    any = true;
  }
  if (any) {
    if (clock_.valid()) {
      clock_.ScheduleAfter(ph, total_sectors * costs_.blk_sector_cost,
                           [this](const SerialPhase& sp) { NotifyGuest(sp); });
    } else {
      NotifyGuest(ph);
    }
  }
  return OkStatus();
}

Result<uint64_t> VirtioBlk::HandleChain(const Chain& chain) {
  ++blk_stats_.requests;
  VirtQueue& vq = queue(0);

  // Minimum shape: header + status. The status byte is the last writable
  // element; we locate it so we can report malformed requests to the guest.
  auto fail = [&](uint8_t status) -> Result<uint64_t> {
    if (!chain.elems.empty() && chain.elems.back().device_writes &&
        chain.elems.back().len >= 1) {
      (void)memory().WriteU8(chain.elems.back().gpa, status);
    }
    ++blk_stats_.errors;
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 1));
    return uint64_t{0};
  };

  if (chain.elems.size() < 2 || chain.elems.front().device_writes ||
      chain.elems.front().len < kHeaderBytes || !chain.elems.back().device_writes ||
      chain.elems.back().len < 1) {
    return fail(kBlkStatusUnsupported);
  }

  uint8_t header[kHeaderBytes];
  HYP_RETURN_IF_ERROR(memory().Read(chain.elems.front().gpa, header, kHeaderBytes));
  uint32_t type;
  uint64_t sector;
  std::memcpy(&type, header, 4);
  std::memcpy(&sector, header + 8, 8);

  if (type == kBlkReqRead) {
    // Data elements are the writable ones, minus the trailing status byte.
    uint32_t data_bytes = chain.TotalWritable() - chain.elems.back().len;
    if (data_bytes == 0 || data_bytes % storage::kSectorSize != 0) {
      return fail(kBlkStatusUnsupported);
    }
    uint32_t count = data_bytes / storage::kSectorSize;
    std::vector<uint8_t> buf(data_bytes);
    if (!store_->ReadSectors(sector, count, buf.data()).ok()) {
      return fail(kBlkStatusIoErr);
    }
    // Scatter into all writable elements except the status byte: temporarily
    // treat the last element as excluded by scattering exactly data_bytes.
    uint32_t written = 0;
    const uint8_t* src = buf.data();
    size_t remaining = buf.size();
    for (size_t i = 0; i + 1 < chain.elems.size(); ++i) {
      const ChainElem& e = chain.elems[i];
      if (!e.device_writes || remaining == 0) {
        continue;
      }
      uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(e.len, remaining));
      HYP_RETURN_IF_ERROR(memory().Write(e.gpa, src, chunk));
      src += chunk;
      remaining -= chunk;
      written += chunk;
    }
    mutable_stats().bytes_written += written;
    HYP_RETURN_IF_ERROR(memory().WriteU8(chain.elems.back().gpa, kBlkStatusOk));
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, written + 1));
    blk_stats_.sectors += count;
    return uint64_t{count};
  }

  if (type == kBlkReqWrite) {
    // Data elements are the readable ones after the header.
    uint32_t data_bytes = chain.TotalReadable() - kHeaderBytes;
    if (data_bytes == 0 || data_bytes % storage::kSectorSize != 0) {
      return fail(kBlkStatusUnsupported);
    }
    std::vector<uint8_t> buf;
    buf.reserve(data_bytes);
    for (size_t i = 1; i < chain.elems.size(); ++i) {
      const ChainElem& e = chain.elems[i];
      if (e.device_writes) {
        continue;
      }
      size_t at = buf.size();
      buf.resize(at + e.len);
      HYP_RETURN_IF_ERROR(memory().Read(e.gpa, buf.data() + at, e.len));
    }
    mutable_stats().bytes_read += buf.size();
    uint32_t count = data_bytes / storage::kSectorSize;
    if (!store_->WriteSectors(sector, count, buf.data()).ok()) {
      return fail(kBlkStatusIoErr);
    }
    HYP_RETURN_IF_ERROR(memory().WriteU8(chain.elems.back().gpa, kBlkStatusOk));
    HYP_RETURN_IF_ERROR(vq.PushUsed(memory(), chain.head, 1));
    blk_stats_.sectors += count;
    return uint64_t{count};
  }

  return fail(kBlkStatusUnsupported);
}

}  // namespace hyperion::virtio
