// Host physical memory: a pool of 4 KiB frames shared by every VM on a host.
//
// Frames are reference-counted so that content-based page sharing (src/ksm)
// can map one host frame into several guests copy-on-write.
//
// Concurrency (DESIGN.md §8): during a round of the staged execution core,
// worker threads may Allocate (COW break, balloon deflate) and stage DecRefs
// (COW break, balloon inflate); Allocate/AddRef take the pool mutex, DecRef
// is deferred into a per-slice Stage and applied at the round barrier in
// deterministic commit order. Because AddRef only ever happens at barriers
// (KSM scans, snapshot restore) and DecRefs are deferred, every refcount a
// slice can observe is stable for the whole round — sharing decisions do not
// depend on worker interleaving. Frame *numbers* handed out by Allocate may
// vary with interleaving, but frame numbering is invisible to guest-visible
// state; the one observable caveat is allocation-failure attribution when
// the pool runs dry mid-round, which is schedule-dependent.
//
// Phase discipline (DESIGN.md §9): the immediate-effect entry points
// (DecRefImmediate, AddRef) demand a direct-phase token that worker lanes
// cannot hold; lanes stage via DecRef(const ExecutePhase&, ...). Code that
// runs in both regimes (GuestMemory's COW break) dispatches through
// DecRef(const Phase&, ...).

#ifndef SRC_MEM_FRAME_POOL_H_
#define SRC_MEM_FRAME_POOL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/isa/hv32.h"
#include "src/util/bitmap.h"
#include "src/util/phase.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace hyperion::net {
class FrameBuf;  // friend: the refcounted network payload buffer
}  // namespace hyperion::net

namespace hyperion::mem {

// Index of a host physical frame within a FramePool.
using HostFrame = uint32_t;
inline constexpr HostFrame kInvalidFrame = UINT32_MAX;

class FramePool {
 public:
  // A pool holding `num_frames` 4 KiB frames (all initially free).
  explicit FramePool(size_t num_frames);

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // Per-slice staging buffer for deferred DecRefs (see the file comment).
  struct Stage {
    FramePool* pool = nullptr;
    std::vector<HostFrame> decrefs;
  };

  // Installs `stage` as the current thread's staging buffer (nullptr to
  // clear). Only the host run loop does this, around each slice.
  static void SetStage(const ExecutePhase&, Stage* stage) { tls_stage_ = stage; }

  // Applies a slice's staged DecRefs, in staging order (round barrier).
  void CommitStage(const CommitPhase&, Stage& stage);

  // Allocates a zeroed frame with refcount 1.
  Result<HostFrame> Allocate();

  // Allocates a frame backing a refcounted network payload buffer
  // (net::FrameBuf) rather than a guest mapping. Netbuf frames always hold
  // pool refcount 1 — FrameBuf multiplexes its own shared handle on top —
  // and are flagged so the frame-accounting auditor expects them to be
  // mapped by zero guest pages. Contents are not zeroed: the buffer is
  // write-before-read by construction.
  Result<HostFrame> AllocateNetBuf();

  // Lockless like RefCount: the auditor runs at the round barrier.
  bool IsNetBuf(HostFrame frame) const HYP_NO_THREAD_SAFETY_ANALYSIS {
    return frame < netbuf_.size() && netbuf_[frame] != 0;
  }
  size_t netbuf_frames() const HYP_NO_THREAD_SAFETY_ANALYSIS { return netbuf_count_; }

  // Drops one reference from an executing slice: deferred into the slice's
  // Stage, applied at the round barrier.
  void DecRef(const ExecutePhase& ph, HostFrame frame) { DecRefAny(ph, frame); }

  // Phase-dispatching decref for code that runs in both regimes
  // (GuestMemory COW break / balloon paths).
  void DecRef(const Phase& ph, HostFrame frame) { DecRefAny(ph, frame); }

  // Drops one reference in place; the frame returns to the free list at
  // refcount 0. Serial/commit phases only.
  void DecRefImmediate(const DirectPhase&, HostFrame frame);

  // Adds a reference (page-sharing). Barrier-only: demands a direct token.
  void AddRef(const DirectPhase&, HostFrame frame);

  // Deliberately lockless (see mu_'s comment): reachable refcounts are
  // round-stable, which the analysis cannot see.
  uint32_t RefCount(HostFrame frame) const HYP_NO_THREAD_SAFETY_ANALYSIS;

  uint8_t* FrameData(HostFrame frame);
  const uint8_t* FrameData(HostFrame frame) const;

  size_t total_frames() const HYP_NO_THREAD_SAFETY_ANALYSIS { return refcount_.size(); }
  size_t free_frames() const HYP_NO_THREAD_SAFETY_ANALYSIS { return free_count_; }
  size_t used_frames() const { return total_frames() - free_frames(); }

 private:
  // Release path for FrameBuf's control block, which dies wherever the last
  // handle dies: stages when the current thread is inside an execute slice,
  // drops the reference in place otherwise. Private on purpose — the
  // destructor of a refcounted buffer cannot carry a phase token, so the
  // hole in the token discipline is scoped to the one friend that needs it,
  // and the staging route keeps release ordering deterministic for any
  // worker count (DESIGN.md §10).
  friend class net::FrameBuf;
  void ReleaseNetBuf(HostFrame frame);

  Result<HostFrame> AllocateLocked(bool zero) HYP_REQUIRES(mu_);

  // Lockless like RefCount: used on the staged DecRef path (assert only).
  bool IsAllocated(HostFrame frame) const HYP_NO_THREAD_SAFETY_ANALYSIS {
    return frame < refcount_.size() && refcount_[frame] > 0;
  }

  // Shared leaf under the token-typed entry points: stage when the current
  // thread is staging for this pool, decref in place otherwise (PR 5 body).
  void DecRefAny(const Phase& ph, HostFrame frame);

  void DecRefLocked(HostFrame frame) HYP_REQUIRES(mu_);

  static inline thread_local Stage* tls_stage_ = nullptr;

  // Guards refcount_/free_count_/alloc_cursor_ against concurrent Allocate
  // calls from slices. RefCount reads are deliberately lockless: the only
  // refcounts a slice can reach are those of frames mapped somewhere, and
  // these are round-stable (see the file comment).
  mutable std::mutex mu_;

  std::vector<uint8_t> memory_;
  std::vector<uint32_t> refcount_ HYP_GUARDED_BY(mu_);
  std::vector<uint8_t> netbuf_ HYP_GUARDED_BY(mu_);  // frame backs a FrameBuf
  size_t netbuf_count_ HYP_GUARDED_BY(mu_) = 0;
  size_t free_count_ HYP_GUARDED_BY(mu_);
  size_t alloc_cursor_ HYP_GUARDED_BY(mu_) = 0;  // next-fit scan position
};

}  // namespace hyperion::mem

#endif  // SRC_MEM_FRAME_POOL_H_
