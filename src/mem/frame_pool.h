// Host physical memory: a pool of 4 KiB frames shared by every VM on a host.
//
// Frames are reference-counted so that content-based page sharing (src/ksm)
// can map one host frame into several guests copy-on-write.

#ifndef SRC_MEM_FRAME_POOL_H_
#define SRC_MEM_FRAME_POOL_H_

#include <cstdint>
#include <vector>

#include "src/isa/hv32.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace hyperion::mem {

// Index of a host physical frame within a FramePool.
using HostFrame = uint32_t;
inline constexpr HostFrame kInvalidFrame = UINT32_MAX;

class FramePool {
 public:
  // A pool holding `num_frames` 4 KiB frames (all initially free).
  explicit FramePool(size_t num_frames);

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // Allocates a zeroed frame with refcount 1.
  Result<HostFrame> Allocate();

  // Drops one reference; the frame returns to the free list at refcount 0.
  void DecRef(HostFrame frame);

  // Adds a reference (page-sharing).
  void AddRef(HostFrame frame);

  uint32_t RefCount(HostFrame frame) const;

  uint8_t* FrameData(HostFrame frame);
  const uint8_t* FrameData(HostFrame frame) const;

  size_t total_frames() const { return refcount_.size(); }
  size_t free_frames() const { return free_count_; }
  size_t used_frames() const { return total_frames() - free_count_; }

 private:
  bool IsAllocated(HostFrame frame) const {
    return frame < refcount_.size() && refcount_[frame] > 0;
  }

  std::vector<uint8_t> memory_;
  std::vector<uint32_t> refcount_;
  size_t free_count_;
  size_t alloc_cursor_ = 0;  // next-fit scan position
};

}  // namespace hyperion::mem

#endif  // SRC_MEM_FRAME_POOL_H_
