#include "src/mem/guest_memory.h"

#include <cstring>

namespace hyperion::mem {

using isa::kPageSize;

Result<std::unique_ptr<GuestMemory>> GuestMemory::Create(FramePool* pool, uint32_t ram_bytes) {
  if (ram_bytes == 0 || ram_bytes % kPageSize != 0) {
    return InvalidArgumentError("RAM size must be a positive multiple of the page size");
  }
  if (isa::IsMmio(ram_bytes - 1)) {
    return InvalidArgumentError("RAM size overlaps the MMIO window");
  }
  uint32_t num_pages = ram_bytes / kPageSize;
  if (num_pages > pool->free_frames()) {
    return ResourceExhaustedError("host pool cannot back " + std::to_string(num_pages) +
                                  " guest pages");
  }
  std::vector<HostFrame> pages(num_pages, kInvalidFrame);
  for (uint32_t i = 0; i < num_pages; ++i) {
    HYP_ASSIGN_OR_RETURN(pages[i], pool->Allocate());
  }
  return std::unique_ptr<GuestMemory>(new GuestMemory(pool, std::move(pages)));
}

GuestMemory::GuestMemory(FramePool* pool, std::vector<HostFrame> pages)
    : pool_(pool), pages_(std::move(pages)) {
  dirty_.Resize(pages_.size());
  shared_.Resize(pages_.size());
  write_protected_.Resize(pages_.size());
}

GuestMemory::~GuestMemory() {
  // Teardown is serial by construction (between rounds).
  ScopedSerialPhase ph;
  for (HostFrame f : pages_) {
    if (f != kInvalidFrame) {
      pool_->DecRefImmediate(ph, f);
    }
  }
}

HostFrame GuestMemory::FrameForPage(uint32_t gpn) const {
  return gpn < pages_.size() ? pages_[gpn] : kInvalidFrame;
}

Status GuestMemory::ReleasePage(const Phase& ph, uint32_t gpn) {
  if (gpn >= pages_.size()) {
    return OutOfRangeError("gpn past end of RAM");
  }
  if (pages_[gpn] == kInvalidFrame) {
    return FailedPreconditionError("page already absent");
  }
  pool_->DecRef(ph, pages_[gpn]);
  pages_[gpn] = kInvalidFrame;
  shared_.Clear(gpn);
  NotifyInvalidate(gpn);
  return OkStatus();
}

Status GuestMemory::PopulatePage(uint32_t gpn) {
  if (gpn >= pages_.size()) {
    return OutOfRangeError("gpn past end of RAM");
  }
  if (pages_[gpn] != kInvalidFrame) {
    return FailedPreconditionError("page already present");
  }
  HYP_ASSIGN_OR_RETURN(pages_[gpn], pool_->Allocate());
  NotifyInvalidate(gpn);
  return OkStatus();
}

Status GuestMemory::RemapPage(const DirectPhase& ph, uint32_t gpn, HostFrame frame) {
  if (gpn >= pages_.size()) {
    return OutOfRangeError("gpn past end of RAM");
  }
  pool_->AddRef(ph, frame);
  if (pages_[gpn] != kInvalidFrame) {
    pool_->DecRefImmediate(ph, pages_[gpn]);
  }
  pages_[gpn] = frame;
  NotifyInvalidate(gpn);
  return OkStatus();
}

uint8_t* GuestMemory::PageData(uint32_t gpn) {
  HostFrame f = FrameForPage(gpn);
  return f == kInvalidFrame ? nullptr : pool_->FrameData(f);
}

const uint8_t* GuestMemory::PageData(uint32_t gpn) const {
  HostFrame f = FrameForPage(gpn);
  return f == kInvalidFrame ? nullptr : pool_->FrameData(f);
}

bool GuestMemory::PageIsZero(uint32_t gpn) const {
  const uint8_t* p = PageData(gpn);
  if (p == nullptr) {
    return false;
  }
  uint64_t acc = 0;
  for (size_t i = 0; i < kPageSize; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    acc |= w;
    if (acc != 0) {
      return false;
    }
  }
  return true;
}

Status GuestMemory::CheckRange(uint32_t gpa, size_t size) const {
  uint64_t end = static_cast<uint64_t>(gpa) + size;
  if (end > static_cast<uint64_t>(ram_size())) {
    return OutOfRangeError("gpa range past end of RAM");
  }
  return OkStatus();
}

Status GuestMemory::Read(uint32_t gpa, void* out, size_t size) const {
  HYP_RETURN_IF_ERROR(CheckRange(gpa, size));
  auto* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    uint32_t gpn = isa::PageNumber(gpa);
    uint32_t off = isa::VaPageOffset(gpa);
    size_t chunk = std::min<size_t>(size, kPageSize - off);
    const uint8_t* page = PageData(gpn);
    if (page == nullptr) {
      return FailedPreconditionError("read of absent guest page " + std::to_string(gpn));
    }
    std::memcpy(dst, page + off, chunk);
    dst += chunk;
    gpa += static_cast<uint32_t>(chunk);
    size -= chunk;
  }
  return OkStatus();
}

Status GuestMemory::Write(uint32_t gpa, const void* data, size_t size) {
  HYP_RETURN_IF_ERROR(CheckRange(gpa, size));
  const auto* src = static_cast<const uint8_t*>(data);
  while (size > 0) {
    uint32_t gpn = isa::PageNumber(gpa);
    uint32_t off = isa::VaPageOffset(gpa);
    size_t chunk = std::min<size_t>(size, kPageSize - off);
    if (IsShared(gpn)) {
      // Host-side writes (device DMA, trap emulation) must not scribble on a
      // frame other guests still map: break sharing transparently, charging
      // the effect to the installed phase (the executing slice's) or to a
      // runtime-checked serial token.
      if (effect_phase_ != nullptr) {
        HYP_RETURN_IF_ERROR(BreakSharing(*effect_phase_, gpn));
      } else {
        ScopedSerialPhase serial;
        HYP_RETURN_IF_ERROR(BreakSharing(serial, gpn));
      }
    }
    uint8_t* page = PageData(gpn);
    if (page == nullptr) {
      return FailedPreconditionError("write to absent guest page " + std::to_string(gpn));
    }
    std::memcpy(page + off, src, chunk);
    MarkDirty(gpn);
    src += chunk;
    gpa += static_cast<uint32_t>(chunk);
    size -= chunk;
  }
  return OkStatus();
}

Result<uint8_t> GuestMemory::ReadU8(uint32_t gpa) const {
  uint8_t v;
  HYP_RETURN_IF_ERROR(Read(gpa, &v, sizeof(v)));
  return v;
}

Result<uint16_t> GuestMemory::ReadU16(uint32_t gpa) const {
  uint16_t v;
  HYP_RETURN_IF_ERROR(Read(gpa, &v, sizeof(v)));
  return v;
}

Result<uint32_t> GuestMemory::ReadU32(uint32_t gpa) const {
  uint32_t v;
  HYP_RETURN_IF_ERROR(Read(gpa, &v, sizeof(v)));
  return v;
}

Status GuestMemory::WriteU8(uint32_t gpa, uint8_t v) { return Write(gpa, &v, sizeof(v)); }
Status GuestMemory::WriteU16(uint32_t gpa, uint16_t v) { return Write(gpa, &v, sizeof(v)); }
Status GuestMemory::WriteU32(uint32_t gpa, uint32_t v) { return Write(gpa, &v, sizeof(v)); }

void GuestMemory::EnableDirtyLog() {
  dirty_log_enabled_ = true;
  dirty_.ClearAll();
}

void GuestMemory::DisableDirtyLog() {
  dirty_log_enabled_ = false;
  dirty_.ClearAll();
}

bool GuestMemory::MarkDirty(uint32_t gpn) {
  if (dirty_log_enabled_ && gpn < dirty_.size()) {
    bool newly = !dirty_.Test(gpn);
    dirty_.Set(gpn);
    return newly;
  }
  return false;
}

Bitmap GuestMemory::HarvestDirty() { return dirty_.ExchangeClear(); }

bool GuestMemory::IsShared(uint32_t gpn) const {
  return gpn < shared_.size() && shared_.Test(gpn);
}

void GuestMemory::SetShared(uint32_t gpn, bool shared) {
  if (gpn < shared_.size()) {
    shared_.Assign(gpn, shared);
  }
}

Status GuestMemory::BreakSharing(const Phase& ph, uint32_t gpn) {
  if (gpn >= pages_.size()) {
    return OutOfRangeError("gpn past end of RAM");
  }
  if (!shared_.Test(gpn)) {
    return FailedPreconditionError("page is not shared");
  }
  HostFrame old = pages_[gpn];
  HYP_ASSIGN_OR_RETURN(HostFrame fresh, pool_->Allocate());
  std::memcpy(pool_->FrameData(fresh), pool_->FrameData(old), kPageSize);
  pages_[gpn] = fresh;
  pool_->DecRef(ph, old);
  shared_.Clear(gpn);
  MarkDirty(gpn);
  NotifyInvalidate(gpn);
  return OkStatus();
}

bool GuestMemory::IsWriteProtected(uint32_t gpn) const {
  return gpn < write_protected_.size() && write_protected_.Test(gpn);
}

void GuestMemory::SetWriteProtected(uint32_t gpn, bool wp) {
  if (gpn < write_protected_.size()) {
    write_protected_.Assign(gpn, wp);
  }
}

}  // namespace hyperion::mem
