#include "src/mem/frame_pool.h"

#include <cassert>
#include <cstring>

namespace hyperion::mem {

FramePool::FramePool(size_t num_frames)
    : memory_(num_frames * isa::kPageSize),
      refcount_(num_frames, 0),
      netbuf_(num_frames, 0),
      free_count_(num_frames) {}

Result<HostFrame> FramePool::AllocateLocked(bool zero) {
  if (free_count_ == 0) {
    return ResourceExhaustedError("host frame pool exhausted");
  }
  // Next-fit scan; wraps once.
  size_t n = refcount_.size();
  for (size_t step = 0; step < n; ++step) {
    size_t i = (alloc_cursor_ + step) % n;
    if (refcount_[i] == 0) {
      alloc_cursor_ = (i + 1) % n;
      refcount_[i] = 1;
      --free_count_;
      if (zero) {
        std::memset(memory_.data() + i * isa::kPageSize, 0, isa::kPageSize);
      }
      return static_cast<HostFrame>(i);
    }
  }
  return InternalError("free_count_ positive but no free frame found");
}

Result<HostFrame> FramePool::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocateLocked(/*zero=*/true);
}

Result<HostFrame> FramePool::AllocateNetBuf() {
  std::lock_guard<std::mutex> lock(mu_);
  HYP_ASSIGN_OR_RETURN(HostFrame frame, AllocateLocked(/*zero=*/false));
  netbuf_[frame] = 1;
  ++netbuf_count_;
  return frame;
}

void FramePool::ReleaseNetBuf(HostFrame frame) {
  Stage* s = tls_stage_;
  if (s != nullptr && s->pool == this) {
    assert(IsAllocated(frame));
    s->decrefs.push_back(frame);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  DecRefLocked(frame);
}

void FramePool::DecRefAny(const Phase&, HostFrame frame) {
  Stage* s = tls_stage_;
  if (s != nullptr && s->pool == this) {
    assert(IsAllocated(frame));
    s->decrefs.push_back(frame);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  DecRefLocked(frame);
}

void FramePool::DecRefImmediate(const DirectPhase&, HostFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  DecRefLocked(frame);
}

void FramePool::CommitStage(const CommitPhase&, Stage& stage) {
  if (stage.decrefs.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (HostFrame frame : stage.decrefs) {
    DecRefLocked(frame);
  }
  stage.decrefs.clear();
}

void FramePool::DecRefLocked(HostFrame frame) {
  assert(IsAllocated(frame));
  if (--refcount_[frame] == 0) {
    ++free_count_;
    if (netbuf_[frame] != 0) {
      netbuf_[frame] = 0;
      --netbuf_count_;
    }
  }
}

void FramePool::AddRef(const DirectPhase&, HostFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(IsAllocated(frame));
  ++refcount_[frame];
}

uint32_t FramePool::RefCount(HostFrame frame) const HYP_NO_THREAD_SAFETY_ANALYSIS {
  assert(frame < refcount_.size());
  return refcount_[frame];
}

uint8_t* FramePool::FrameData(HostFrame frame) {
  assert(IsAllocated(frame));
  return memory_.data() + static_cast<size_t>(frame) * isa::kPageSize;
}

const uint8_t* FramePool::FrameData(HostFrame frame) const {
  assert(IsAllocated(frame));
  return memory_.data() + static_cast<size_t>(frame) * isa::kPageSize;
}

}  // namespace hyperion::mem
