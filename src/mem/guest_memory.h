// Guest-physical address space of one VM.
//
// GuestMemory maps guest page numbers to host frames from the shared
// FramePool. It provides bounds-checked byte access (used by device DMA,
// snapshotting and migration), dirty-page logging (pre-copy migration),
// page-presence tracking (ballooning, post-copy demand paging) and per-page
// share/write-protect flags (KSM copy-on-write and shadow-paging traps).

#ifndef SRC_MEM_GUEST_MEMORY_H_
#define SRC_MEM_GUEST_MEMORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/util/phase.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace hyperion::mem {

class GuestMemory {
 public:
  // Creates a fully populated gPA space of `ram_bytes` (must be page-aligned)
  // backed by `pool`. Fails if the pool cannot supply enough frames.
  static Result<std::unique_ptr<GuestMemory>> Create(FramePool* pool, uint32_t ram_bytes);

  ~GuestMemory();

  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;

  uint32_t ram_size() const { return static_cast<uint32_t>(pages_.size()) * isa::kPageSize; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  FramePool& pool() { return *pool_; }

  // Invoked whenever the backing of a page changes under the guest (remap,
  // release, populate, COW break), so the owner can drop cached translations.
  void SetInvalidateHook(std::function<void(uint32_t)> hook) { invalidate_hook_ = std::move(hook); }

  // --- Page mapping -------------------------------------------------------

  // Host frame backing guest page `gpn`, or kInvalidFrame when not present
  // (ballooned out or not yet arrived during post-copy).
  HostFrame FrameForPage(uint32_t gpn) const;
  bool IsPresent(uint32_t gpn) const { return FrameForPage(gpn) != kInvalidFrame; }

  // Releases the frame backing `gpn` (balloon inflate / migration source).
  // Runs in both regimes (hypercall from a slice; migration serially), so it
  // takes `const Phase&` and the pool decref dispatches on it.
  Status ReleasePage(const Phase& ph, uint32_t gpn);

  // Installs a fresh zeroed frame at `gpn` (balloon deflate).
  Status PopulatePage(uint32_t gpn);

  // Replaces the mapping of `gpn` with `frame` (KSM merge; takes a ref on
  // `frame` and drops the old frame's ref). AddRef is barrier-only, so this
  // demands a direct token (KSM scans and snapshot restore are serial).
  Status RemapPage(const DirectPhase& ph, uint32_t gpn, HostFrame frame);

  // Direct pointer to the page's data; null when not present.
  uint8_t* PageData(uint32_t gpn);
  const uint8_t* PageData(uint32_t gpn) const;

  // True when the page is present and holds only zero bytes (snapshot and
  // migration elide such pages).
  bool PageIsZero(uint32_t gpn) const;

  // --- Byte access (crosses page boundaries; fails on absent pages) --------

  Status Read(uint32_t gpa, void* out, size_t size) const;
  // Write breaks sharing transparently when it hits a COW page; the decref
  // that implies routes through the effect phase installed by
  // SetEffectPhase, falling back to a runtime-checked serial token.
  Status Write(uint32_t gpa, const void* data, size_t size);

  Result<uint8_t> ReadU8(uint32_t gpa) const;
  Result<uint16_t> ReadU16(uint32_t gpa) const;
  Result<uint32_t> ReadU32(uint32_t gpa) const;
  Status WriteU8(uint32_t gpa, uint8_t v);
  Status WriteU16(uint32_t gpa, uint16_t v);
  Status WriteU32(uint32_t gpa, uint32_t v);

  // --- Dirty logging (pre-copy migration, incremental snapshots) -----------

  void EnableDirtyLog();
  void DisableDirtyLog();
  bool dirty_log_enabled() const { return dirty_log_enabled_; }
  // Records a write to `gpn`. Returns true when this is the first write since
  // the last harvest while logging is enabled (the caller charges the
  // write-protect-fault cost real dirty logging would incur).
  bool MarkDirty(uint32_t gpn);
  // Returns the dirty set accumulated since the last harvest and clears it.
  Bitmap HarvestDirty();
  size_t DirtyCount() const { return dirty_.Count(); }

  // --- Per-page flags -------------------------------------------------------

  // COW-shared pages (KSM): stores must break sharing before writing.
  bool IsShared(uint32_t gpn) const;
  void SetShared(uint32_t gpn, bool shared);

  // Allocates a private copy of a shared page and remaps gpn to it.
  // Dual-regime (engine COW break in a slice; host-side writes serially).
  Status BreakSharing(const Phase& ph, uint32_t gpn);

  // Fires the invalidate hook for `gpn` without changing the mapping (KSM
  // flips the shared bit on a representative page: cached writable
  // translations must drop even though the frame is unchanged).
  void NotifySharedExternally(uint32_t gpn) { NotifyInvalidate(gpn); }

  // Installs the phase that transparent COW breaks inside Write should
  // charge effects to. The VM sets this to the slice's ExecutePhase for the
  // duration of RunVcpuSlice (device DMA during queue processing lands
  // here); when unset, Write mints a runtime-checked ScopedSerialPhase.
  void SetEffectPhase(const Phase* ph) { effect_phase_ = ph; }

  // Write-protected pages (shadow paging traps guest page-table writes).
  bool IsWriteProtected(uint32_t gpn) const;
  void SetWriteProtected(uint32_t gpn, bool wp);
  size_t WriteProtectedCount() const { return write_protected_.Count(); }

 private:
  GuestMemory(FramePool* pool, std::vector<HostFrame> pages);

  Status CheckRange(uint32_t gpa, size_t size) const;
  void NotifyInvalidate(uint32_t gpn) {
    if (invalidate_hook_) {
      invalidate_hook_(gpn);
    }
  }

  std::function<void(uint32_t)> invalidate_hook_;
  const Phase* effect_phase_ = nullptr;  // see SetEffectPhase
  FramePool* pool_;
  std::vector<HostFrame> pages_;  // gpn -> host frame (or kInvalidFrame)
  Bitmap dirty_;
  Bitmap shared_;
  Bitmap write_protected_;
  bool dirty_log_enabled_ = false;
};

}  // namespace hyperion::mem

#endif  // SRC_MEM_GUEST_MEMORY_H_
