// Quickstart: create a host, boot a guest, watch it print and shut down.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the hyperion API: a Host supplies
// physical resources, a Vm is configured and booted from an assembled guest
// image, and the host run loop drives everything in simulated time.

#include <cstdio>

#include "src/core/host.h"
#include "src/guest/programs.h"

using namespace hyperion;

int main() {
  // A host with 2 pCPUs and 64 MiB of RAM.
  core::HostConfig host_config;
  host_config.name = "demo-host";
  host_config.num_pcpus = 2;
  host_config.ram_bytes = 64u << 20;
  core::Host host(host_config);

  // A 4 MiB guest using nested paging and the interpreter engine.
  core::VmConfig vm_config;
  vm_config.name = "hello-vm";
  vm_config.ram_bytes = 4u << 20;

  auto vm = host.CreateVm(vm_config);
  if (!vm.ok()) {
    std::fprintf(stderr, "CreateVm: %s\n", vm.status().ToString().c_str());
    return 1;
  }

  // Guests are HV32 programs. HelloProgram prints via the console hypercall;
  // you can also hand-write assembly and assemble it with guest::Build.
  auto image = guest::Build(guest::HelloProgram("Hello from a hyperion guest!\n"));
  if (!image.ok() || !(*vm)->LoadImage(*image).ok()) {
    std::fprintf(stderr, "image load failed\n");
    return 1;
  }

  // Run until the guest powers itself off (or 1 simulated second passes).
  host.RunUntilVmStops(*vm, kSimTicksPerSec);

  std::printf("guest state : %s\n",
              (*vm)->state() == core::VmState::kShutdown ? "shutdown" : "not finished");
  std::printf("console     : %s", (*vm)->console().c_str());

  auto stats = (*vm)->TotalStats();
  std::printf("instructions: %llu\n", static_cast<unsigned long long>(stats.instructions));
  std::printf("cycles      : %llu\n", static_cast<unsigned long long>(stats.cycles));
  std::printf("hypercalls  : %llu\n", static_cast<unsigned long long>(stats.hypercalls));
  std::printf("sim time    : %.3f ms\n", SimTimeToMs(host.clock().now()));
  return 0;
}
