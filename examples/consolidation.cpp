// Server consolidation: the scenario from the source deck — one physical
// host running a mixed rack of production-style VMs (a mostly idle domain
// controller, an ERP application server, a database doing disk I/O, and a
// terminal server churning memory) plus their aggregate behavior.
//
//   $ ./consolidation
//
// Prints a per-VM table (work done, CPU share, exits) and the host totals,
// demonstrating how 4+ servers share one physical machine.

#include <cstdio>

#include "src/core/host.h"
#include "src/guest/programs.h"

using namespace hyperion;

int main() {
  core::HostConfig host_config;
  host_config.name = "rack-host";
  host_config.num_pcpus = 2;
  host_config.ram_bytes = 128u << 20;
  core::Host host(host_config);

  struct Server {
    const char* name;
    const char* role;
    std::string program;
    core::VmConfig config;
  };

  auto disk = std::make_shared<storage::MemBlockStore>(4096);

  std::vector<Server> servers;
  {
    // Domain controller: wakes every 2 ms, otherwise idle.
    Server s{"ad-dc1", "domain controller (idle ticker)", guest::IdleTickProgram(2'000'000), {}};
    s.config.name = s.name;
    servers.push_back(std::move(s));
  }
  {
    // ERP application server: CPU bound.
    Server s{"erp-app", "ERP app server (compute)", guest::ComputeProgram(0), {}};
    s.config.name = s.name;
    servers.push_back(std::move(s));
  }
  {
    // Database: virtio disk writes.
    guest::BlkIoParams io;
    io.iterations = 0xFFFFFF;  // effectively forever within the run window
    io.sectors = 8;
    io.batch = 4;
    io.write = true;
    Server s{"sql-db", "database (virtio disk writes)", guest::VirtioBlkProgram(io), {}};
    s.config.name = s.name;
    s.config.disk_model = core::IoModel::kParavirt;
    s.config.disk = disk;
    servers.push_back(std::move(s));
  }
  {
    // Terminal server: memory-intensive, runs under guest paging.
    guest::MemTouchParams mt;
    mt.pages = 256;
    mt.stride_bytes = 64;
    mt.iterations = 0;
    Server s{"ts-farm", "terminal server (memory churn)", guest::MemTouchProgram(mt), {}};
    s.config.name = s.name;
    s.config.ram_bytes = 8u << 20;  // paging prelude needs the 4 MiB map + tables
    servers.push_back(std::move(s));
  }

  std::vector<core::Vm*> vms;
  for (Server& s : servers) {
    auto image = guest::Build(s.program);
    if (!image.ok()) {
      std::fprintf(stderr, "%s: %s\n", s.name, image.status().ToString().c_str());
      return 1;
    }
    auto vm = host.CreateVm(s.config);
    if (!vm.ok() || !(*vm)->LoadImage(*image).ok()) {
      std::fprintf(stderr, "%s: boot failed\n", s.name);
      return 1;
    }
    vms.push_back(*vm);
  }

  constexpr SimTime kWindow = 200 * kSimTicksPerMs;
  host.RunFor(kWindow);

  std::printf("consolidated rack after %.0f ms on %u pCPUs\n", SimTimeToMs(kWindow),
              host.config().num_pcpus);
  std::printf("%-10s %-36s %12s %9s %8s %8s\n", "vm", "role", "instructions", "cpu%",
              "exits", "state");
  uint64_t total_cycles = 0;
  for (size_t i = 0; i < vms.size(); ++i) {
    auto stats = vms[i]->TotalStats();
    total_cycles += stats.cycles;
    double cpu_pct = 100.0 * static_cast<double>(stats.cycles) /
                     (static_cast<double>(kWindow) * host.config().num_pcpus);
    const char* state = vms[i]->state() == core::VmState::kRunning ? "running" : "stopped";
    std::printf("%-10s %-36s %12llu %8.1f%% %8llu %8s\n", servers[i].name, servers[i].role,
                static_cast<unsigned long long>(stats.instructions), cpu_pct,
                static_cast<unsigned long long>(stats.TotalExits()), state);
  }
  double util = 100.0 * static_cast<double>(total_cycles) /
                (static_cast<double>(kWindow) * host.config().num_pcpus);
  std::printf("\nhost utilization: %.1f%%  (%llu scheduling slices)\n", util,
              static_cast<unsigned long long>(host.stats().slices));
  std::printf("disk: %llu sectors written by sql-db\n",
              static_cast<unsigned long long>(vms[2]->virtio_blk()->blk_stats().sectors));
  return 0;
}
