// Legacy-OS support (the deck's "DOS programs, Windows 98/NT systems"):
// the same unmodified guest runs under two CPU-virtualization flavors —
// trap-and-emulate with shadow paging (pre-VT-x machines) and hardware
// assist with nested paging — with identical results at different cost.
//
//   $ ./legacy_guest

#include <cstdio>

#include "src/core/host.h"
#include "src/guest/programs.h"

using namespace hyperion;

namespace {

struct RunOutcome {
  uint32_t progress = 0;
  cpu::VcpuStats stats;
  bool finished = false;
};

RunOutcome RunLegacy(cpu::VirtMode virt_mode, mmu::PagingMode paging_mode) {
  core::Host host;
  // A "legacy OS" workload: sets up and continuously rewrites its own page
  // tables (process creation/teardown in an old kernel) — the pattern that
  // made unassisted virtualization expensive.
  auto image = guest::Build(guest::PtChurnProgram(2000));
  if (!image.ok()) {
    return {};
  }

  core::VmConfig cfg;
  cfg.name = "legacy";
  cfg.ram_bytes = 8u << 20;
  cfg.virt_mode = virt_mode;
  cfg.paging_mode = paging_mode;
  auto vm = host.CreateVm(cfg);
  if (!vm.ok() || !(*vm)->LoadImage(*image).ok()) {
    return {};
  }

  host.RunUntilVmStops(*vm, 10 * kSimTicksPerSec);
  RunOutcome out;
  out.finished = (*vm)->state() == core::VmState::kShutdown;
  auto addr = guest::ProgressAddress(*image);
  if (addr.ok()) {
    out.progress = (*vm)->memory().ReadU32(*addr).value_or(0);
  }
  out.stats = (*vm)->TotalStats();
  return out;
}

}  // namespace

int main() {
  std::printf("running the same legacy guest under two virtualization flavors\n\n");

  RunOutcome te = RunLegacy(cpu::VirtMode::kTrapAndEmulate, mmu::PagingMode::kShadow);
  RunOutcome hw = RunLegacy(cpu::VirtMode::kHardwareAssist, mmu::PagingMode::kNested);

  std::printf("%-28s %20s %20s\n", "", "trap&emulate+shadow", "hw-assist+nested");
  std::printf("%-28s %20s %20s\n", "finished",
              te.finished ? "yes" : "no", hw.finished ? "yes" : "no");
  std::printf("%-28s %20u %20u\n", "remap pairs completed", te.progress, hw.progress);
  std::printf("%-28s %20llu %20llu\n", "guest instructions",
              static_cast<unsigned long long>(te.stats.instructions),
              static_cast<unsigned long long>(hw.stats.instructions));
  std::printf("%-28s %20llu %20llu\n", "simulated cycles",
              static_cast<unsigned long long>(te.stats.cycles),
              static_cast<unsigned long long>(hw.stats.cycles));
  std::printf("%-28s %20llu %20llu\n", "privileged emulations",
              static_cast<unsigned long long>(te.stats.priv_emulations),
              static_cast<unsigned long long>(hw.stats.priv_emulations));
  std::printf("%-28s %20llu %20llu\n", "PT-write traps",
              static_cast<unsigned long long>(te.stats.pt_write_exits),
              static_cast<unsigned long long>(hw.stats.pt_write_exits));

  if (te.progress == hw.progress && te.finished && hw.finished) {
    double slowdown = static_cast<double>(te.stats.cycles) /
                      static_cast<double>(hw.stats.cycles);
    std::printf("\nidentical results; legacy-mode virtualization overhead: %.2fx\n", slowdown);
  } else {
    std::printf("\nWARNING: outcomes diverged\n");
    return 1;
  }
  return 0;
}
