// Memory overcommit: running more guest RAM than the host physically has,
// using KSM page sharing plus ballooning — the "cost savings in H/W" theme
// of the source deck taken to its memory conclusion.
//
//   $ ./memory_overcommit

#include <cstdio>

#include "src/balloon/balloon.h"
#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/ksm/ksm.h"

using namespace hyperion;

int main() {
  // A deliberately small host: 36 MiB of RAM. Four 8 MiB guests fit; the
  // fifth only fits after page sharing frees duplicate frames — 40 MiB of
  // guest RAM on a 36 MiB host (1.1x overcommit, growing with similarity).
  core::HostConfig hc;
  hc.name = "small-host";
  hc.ram_bytes = 36u << 20;
  core::Host host(hc);

  std::printf("host RAM: %zu MiB; creating 4 x 8 MiB guests (32 MiB guest RAM)\n",
              host.pool().total_frames() * isa::kPageSize / (1 << 20));

  // Guests fill 512 pages each; 384 of them (75%) have identical content
  // across guests (same "OS image"), the rest is instance-specific.
  std::vector<core::Vm*> vms;
  for (int i = 0; i < 4; ++i) {
    auto image = guest::Build(guest::PatternFillProgram(512, 384, 100 + i));
    if (!image.ok()) {
      return 1;
    }
    core::VmConfig cfg;
    cfg.name = "guest" + std::to_string(i);
    cfg.ram_bytes = 8u << 20;
    auto vm = host.CreateVm(cfg);
    if (!vm.ok()) {
      std::fprintf(stderr, "guest%d: %s\n", i, vm.status().ToString().c_str());
      return 1;
    }
    if (!(*vm)->LoadImage(*image).ok()) {
      return 1;
    }
    vms.push_back(*vm);
  }
  host.RunFor(400 * kSimTicksPerMs);  // guests populate their memory

  size_t used = host.pool().used_frames();
  size_t total = host.pool().total_frames();
  std::printf("after boot : %5zu / %zu frames used (%.0f%%)\n", used, total,
              100.0 * used / total);

  // KSM pass: merge identical content (OS image + untouched zero pages).
  ksm::KsmDaemon daemon(&host.pool());
  for (auto* vm : vms) {
    daemon.AddClient(&vm->memory());
  }
  uint64_t merged = daemon.ScanOnce();
  used = host.pool().used_frames();
  std::printf("after KSM  : %5zu / %zu frames used (%.0f%%) — %llu pages merged, %.1f MiB saved\n",
              used, total, 100.0 * used / total,
              static_cast<unsigned long long>(merged),
              static_cast<double>(daemon.stats().BytesSaved()) / (1 << 20));

  // The freed frames admit a FIFTH 8 MiB guest that would not have fit
  // before sharing: that is memory overcommit.
  {
    auto image = guest::Build(guest::PatternFillProgram(512, 384, 200));
    core::VmConfig cfg;
    cfg.name = "guest4";
    cfg.ram_bytes = 8u << 20;
    auto vm = host.CreateVm(cfg);
    if (!vm.ok()) {
      std::fprintf(stderr, "guest4: %s\n", vm.status().ToString().c_str());
      return 1;
    }
    if (!image.ok() || !(*vm)->LoadImage(*image).ok()) {
      return 1;
    }
    host.RunFor(200 * kSimTicksPerMs);
    (void)daemon.ScanOnce();  // fold the newcomer into the share groups
    std::printf("fifth guest: booted OK -> %zu MiB of guest RAM on a %zu MiB host "
                "(%5zu / %zu frames used)\n",
                size_t{40}, host.pool().total_frames() * isa::kPageSize / (1 << 20),
                host.pool().used_frames(), host.pool().total_frames());
  }

  // Memory pressure arrives: reclaim 1024 frames via ballooning. The guests
  // would normally run balloon drivers; here we demonstrate the controller's
  // proportional plan on freshly booted driver VMs.
  core::HostConfig hc2 = hc;
  hc2.ram_bytes = 48u << 20;
  core::Host host2(hc2);
  std::vector<core::Vm*> drivers;
  for (int i = 0; i < 4; ++i) {
    auto image = guest::Build(guest::BalloonDriverProgram(1024, 1024, 100000));
    core::VmConfig cfg;
    cfg.name = "drv" + std::to_string(i);
    cfg.ram_bytes = 8u << 20;
    auto vm = host2.CreateVm(cfg);
    if (!image.ok() || !vm.ok() || !(*vm)->LoadImage(*image).ok()) {
      return 1;
    }
    drivers.push_back(*vm);
  }
  balloon::BalloonController controller(&host2);
  size_t free_before = host2.pool().free_frames();
  auto plan = controller.ReclaimPages(1024);
  if (!plan.ok()) {
    std::fprintf(stderr, "reclaim: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  host2.RunFor(300 * kSimTicksPerMs);
  std::printf("\nballoon   : demanded 1024 pages, reclaimed %u "
              "(host free frames %zu -> %zu)\n",
              controller.TotalBallooned(), free_before, host2.pool().free_frames());
  for (auto* vm : drivers) {
    std::printf("  %-6s gave back %4u pages\n", vm->name().c_str(), vm->ballooned_pages());
  }
  return 0;
}
