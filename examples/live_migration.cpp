// Live migration ("DR services" from the source deck): move a running VM
// between two hosts with pre-copy and post-copy, and compare downtime.
//
//   $ ./live_migration

#include <cstdio>

#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/migrate/migrate.h"

using namespace hyperion;

namespace {

void PrintReport(const char* title, const migrate::MigrationReport& r) {
  std::printf("%s\n", title);
  std::printf("  rounds        : %u\n", r.rounds);
  std::printf("  pages sent    : %llu\n", static_cast<unsigned long long>(r.pages_sent));
  std::printf("  bytes sent    : %.2f MiB\n", static_cast<double>(r.bytes_sent) / (1 << 20));
  std::printf("  total time    : %.2f ms\n", r.TotalMs());
  std::printf("  downtime      : %.3f ms\n", r.DowntimeMs());
  if (r.demand_fetches > 0) {
    std::printf("  demand fetches: %llu (stall total %.2f ms)\n",
                static_cast<unsigned long long>(r.demand_fetches),
                SimTimeToMs(r.demand_stall_total));
  }
}

core::Vm* BootWorkload(core::Host& host, const std::string& name) {
  // A guest that keeps dirtying a 128-page region while computing.
  auto image = guest::Build(guest::DirtyRateProgram(128, 5000));
  if (!image.ok()) {
    return nullptr;
  }
  core::VmConfig cfg;
  cfg.name = name;
  cfg.ram_bytes = 4u << 20;
  auto vm = host.CreateVm(cfg);
  if (!vm.ok() || !(*vm)->LoadImage(*image).ok()) {
    return nullptr;
  }
  return *vm;
}

}  // namespace

int main() {
  migrate::MigrateOptions options;  // 1 Gb/s migration link, 50 us latency

  // --- Pre-copy -------------------------------------------------------------
  {
    core::Host src, dst;
    core::Vm* vm = BootWorkload(src, "erp-server");
    if (vm == nullptr) {
      std::fprintf(stderr, "boot failed\n");
      return 1;
    }
    src.RunFor(50 * kSimTicksPerMs);  // let it build up a working set

    migrate::MigrationReport report;
    auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
    if (!moved.ok()) {
      std::fprintf(stderr, "pre-copy failed: %s\n", moved.status().ToString().c_str());
      return 1;
    }
    PrintReport("pre-copy migration (guest keeps running during rounds):", report);
    dst.RunFor(20 * kSimTicksPerMs);
    std::printf("  destination VM state after resume: %s\n\n",
                (*moved)->state() == core::VmState::kRunning ? "running" : "stopped");
  }

  // --- Post-copy ------------------------------------------------------------
  {
    core::Host src, dst;
    core::Vm* vm = BootWorkload(src, "erp-server");
    if (vm == nullptr) {
      return 1;
    }
    src.RunFor(50 * kSimTicksPerMs);

    migrate::MigrationReport report;
    auto moved = migrate::PostCopyMigrate(src, vm, dst, options, &report);
    if (!moved.ok()) {
      std::fprintf(stderr, "post-copy failed: %s\n", moved.status().ToString().c_str());
      return 1;
    }
    PrintReport("post-copy migration (instant switchover, demand paging):", report);
    std::printf("  destination VM state after residency: %s\n",
                (*moved)->state() == core::VmState::kRunning ? "running" : "stopped");
  }
  return 0;
}
