// Rapid provisioning ("instant or very rapid provisioning of servers" from
// the source deck): build a golden template once, then stamp out clones —
// VM state from a template snapshot, disks as O(1) copy-on-write overlays.
//
//   $ ./snapshot_provisioning

#include <chrono>
#include <cstdio>

#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/snapshot/snapshot.h"
#include "src/storage/hvd.h"

using namespace hyperion;

int main() {
  // The whole driver runs serially on the main thread.
  ScopedSerialPhase serial;

  core::HostConfig host_config;
  host_config.ram_bytes = 256u << 20;
  core::Host host(host_config);

  // --- Build the golden disk --------------------------------------------------
  // A 64 MiB golden disk image with some installed content.
  auto golden_disk_r = storage::HvdImage::Create(std::make_unique<storage::MemByteStore>(),
                                                 64u << 20);
  if (!golden_disk_r.ok()) {
    return 1;
  }
  std::shared_ptr<storage::BlockStore> golden_disk = std::move(*golden_disk_r);
  std::vector<uint8_t> blob(64 * storage::kSectorSize, 0x5A);
  (void)golden_disk->WriteSectors(0, 64, blob.data());

  // --- Build the golden VM ----------------------------------------------------
  // A "golden" VM that has booted and preloaded its memory (simulating an
  // installed OS), captured as a template. It carries the same device set the
  // clones will (a virtio disk), which snapshots require.
  auto golden_image = guest::Build(guest::ComputeProgram(400));
  if (!golden_image.ok()) {
    return 1;
  }
  core::VmConfig golden_cfg;
  golden_cfg.name = "golden";
  golden_cfg.disk_model = core::IoModel::kParavirt;
  {
    auto overlay = storage::CreateOverlay(golden_disk, "golden-disk",
                                          std::make_unique<storage::MemByteStore>());
    if (!overlay.ok()) {
      return 1;
    }
    golden_cfg.disk = std::move(*overlay);
  }
  auto golden = host.CreateVm(golden_cfg);
  if (!golden.ok() || !(*golden)->LoadImage(*golden_image).ok()) {
    return 1;
  }
  (*golden)->Pause(serial);
  snapshot::SnapshotInfo info;
  auto tmpl = snapshot::SaveVm(**golden, {}, &info);
  if (!tmpl.ok()) {
    std::fprintf(stderr, "template: %s\n", tmpl.status().ToString().c_str());
    return 1;
  }
  std::printf("golden template: %zu bytes (%u data pages, %u zero pages elided)\n\n",
              tmpl->size(), info.pages_data, info.pages_zero);

  // --- Stamp out clones ------------------------------------------------------
  constexpr int kClones = 8;
  std::printf("provisioning %d clones from the template...\n", kClones);
  auto wall_start = std::chrono::steady_clock::now();

  std::vector<core::Vm*> clones;
  for (int i = 0; i < kClones; ++i) {
    // O(1) copy-on-write disk overlay per clone.
    auto overlay = storage::CreateOverlay(golden_disk, "golden-disk",
                                          std::make_unique<storage::MemByteStore>());
    if (!overlay.ok()) {
      return 1;
    }
    core::VmConfig cfg;
    cfg.name = "clone" + std::to_string(i);
    cfg.disk_model = core::IoModel::kParavirt;
    cfg.disk = std::move(*overlay);
    auto vm = snapshot::CloneVm(host, std::move(cfg), *tmpl);
    if (!vm.ok()) {
      std::fprintf(stderr, "clone %d: %s\n", i, vm.status().ToString().c_str());
      return 1;
    }
    clones.push_back(*vm);
  }
  auto wall_end = std::chrono::steady_clock::now();
  double wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  std::printf("provisioned %d VMs in %.2f ms host wall-clock (%.2f ms per VM)\n\n", kClones,
              wall_ms, wall_ms / kClones);

  // --- Run them ---------------------------------------------------------------
  host.RunFor(200 * kSimTicksPerMs);
  int finished = 0;
  for (core::Vm* vm : clones) {
    finished += vm->state() == core::VmState::kShutdown ? 1 : 0;
  }
  std::printf("after 200 ms simulated: %d/%d clones finished their boot workload\n", finished,
              kClones);
  std::printf("host frames in use: %zu of %zu\n", host.pool().used_frames(),
              host.pool().total_frames());
  return 0;
}
